import pytest

from repro.errors import TriggerError
from repro.triggers import QueryAnswerStore
from repro.xmlstore import parse, serialize


def answer(source):
    return parse(source)


class TestRecording:
    def test_first_record_is_version_one(self):
        store = QueryAnswerStore()
        version, delta = store.record(1, "Q", answer("<Q><t>a</t></Q>"))
        assert version == 1
        assert delta is None

    def test_changed_answer_bumps_version(self):
        store = QueryAnswerStore()
        store.record(1, "Q", answer("<Q><t>a</t></Q>"))
        version, delta = store.record(1, "Q", answer("<Q><t>a</t><t>b</t></Q>"))
        assert version == 2
        assert delta is not None and len(delta.inserts) == 1

    def test_unchanged_answer_keeps_version(self):
        store = QueryAnswerStore()
        store.record(1, "Q", answer("<Q><t>a</t></Q>"))
        version, delta = store.record(1, "Q", answer("<Q><t>a</t></Q>"))
        assert version == 1
        assert delta is not None and not delta

    def test_root_change_restarts_chain(self):
        store = QueryAnswerStore()
        store.record(1, "Q", answer("<Q><t>a</t></Q>"))
        version, delta = store.record(1, "Q", answer("<R><t>a</t></R>"))
        assert version == 2
        assert delta is None
        assert store.retained_versions(1, "Q") == [2]

    def test_input_document_not_mutated(self):
        store = QueryAnswerStore()
        document = answer("<Q><t>a</t></Q>")
        store.record(1, "Q", document)
        assert all(node.xid is None for node in document.preorder())


class TestReading:
    def make_store(self):
        store = QueryAnswerStore()
        store.record(1, "Q", answer("<Q><t>a</t></Q>"))
        store.record(1, "Q", answer("<Q><t>a</t><t>b</t></Q>"))
        store.record(1, "Q", answer("<Q><t>b</t></Q>"))
        return store

    def test_latest(self):
        store = self.make_store()
        assert serialize(store.latest(1, "Q")) == "<Q><t>b</t></Q>"
        assert store.latest_version(1, "Q") == 3

    def test_reconstruct_older_versions(self):
        store = self.make_store()
        assert serialize(store.version(1, "Q", 1)) == "<Q><t>a</t></Q>"
        assert serialize(store.version(1, "Q", 2)) == (
            "<Q><t>a</t><t>b</t></Q>"
        )

    def test_retained_versions(self):
        store = self.make_store()
        assert store.retained_versions(1, "Q") == [3, 2, 1]

    def test_diff_between_versions(self):
        store = self.make_store()
        delta = store.diff(1, "Q", from_version=1, to_version=3)
        assert delta
        assert len(delta.inserts) + len(delta.deletes) + len(
            delta.text_updates
        ) >= 1

    def test_retention_bounded(self):
        store = QueryAnswerStore(keep_versions=2)
        for i in range(5):
            store.record(1, "Q", answer(f"<Q><t>{i}</t></Q>"))
        retained = store.retained_versions(1, "Q")
        assert retained[0] == 5
        assert len(retained) == 2
        with pytest.raises(TriggerError):
            store.version(1, "Q", 1)

    def test_unknown_key_raises(self):
        with pytest.raises(TriggerError):
            QueryAnswerStore().latest(9, "Nope")

    def test_drop_subscription(self):
        store = self.make_store()
        store.drop(1)
        with pytest.raises(TriggerError):
            store.latest(1, "Q")


class TestEngineIntegration:
    def test_system_versions_continuous_answers(self, system, clock):
        system.feed_xml(
            "http://rijks.nl/c.xml",
            "<museum><address>Amsterdam</address>"
            "<painting><title>Night Watch</title></painting></museum>",
        )
        sub_id = system.subscribe(
            """
            subscription A
            continuous Paintings
            select p/title from culture/museum m, m/painting p
            where m/address contains "Amsterdam"
            when daily
            report when immediate
            """,
            owner_email="u@x",
        )
        system.advance_days(1)
        system.feed_xml(
            "http://rijks.nl/c.xml",
            "<museum><address>Amsterdam</address>"
            "<painting><title>Night Watch</title></painting>"
            "<painting><title>Milkmaid</title></painting></museum>",
        )
        system.advance_days(1)
        versions = system.answer_store.retained_versions(sub_id, "Paintings")
        assert versions == [2, 1]
        v1 = system.answer_store.version(sub_id, "Paintings", 1)
        assert "Milkmaid" not in serialize(v1)
        latest = system.answer_store.latest(sub_id, "Paintings")
        assert "Milkmaid" in serialize(latest)
