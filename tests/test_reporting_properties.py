"""Property tests of the Reporter's conservation invariants.

For any sequence of deliveries, time advances and ticks:

* every accepted notification appears in exactly one report (after a final
  force), and suppressed ones (past ``atmost N``) in none;
* reports are never empty;
* with ``atmost <frequency>`` there is never less than one period between
  two deliveries of the same subscription.
"""

from hypothesis import given, settings, strategies as st

from repro.clock import SECONDS_PER_DAY, SimulatedClock
from repro.language.ast import (
    CountCondition,
    ImmediateCondition,
    PeriodicCondition,
    ReportCondition,
)
from repro.reporting import EmailSink, Reporter, ReportRegistration
from repro.xmlstore import parse
from repro.xmlstore.nodes import ElementNode

conditions = st.sampled_from(
    [
        ReportCondition(terms=(ImmediateCondition(),)),
        ReportCondition(terms=(CountCondition(threshold=3),)),
        ReportCondition(terms=(PeriodicCondition(frequency="daily"),)),
        ReportCondition(
            terms=(
                CountCondition(threshold=5),
                PeriodicCondition(frequency="daily"),
            )
        ),
    ]
)
#: ("deliver", n) | ("advance", hours) — a random reporter workload.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("deliver"), st.integers(1, 4)),
        st.tuples(st.just("advance"), st.integers(1, 30)),
    ),
    max_size=25,
)


def run_workload(when, atmost_count, step_list):
    clock = SimulatedClock(0.0)
    reporter = Reporter(clock=clock, email_sink=EmailSink(clock=clock))
    reporter.register(
        ReportRegistration(
            subscription_id=1,
            when=when,
            atmost_count=atmost_count,
        )
    )
    sequence = 0
    for step in step_list:
        if step[0] == "deliver":
            batch = []
            for _ in range(step[1]):
                sequence += 1
                batch.append(ElementNode("N", {"seq": str(sequence)}))
            reporter.deliver(1, "Q", batch)
        else:
            clock.advance(step[1] * 3600.0)
            reporter.tick()
    reporter.force_report(1)
    return reporter, sequence


def delivered_sequences(reporter):
    seen = []
    for number in range(reporter.publisher.count(1)):
        body = reporter.publisher.fetch(1, number)
        document = parse(body)
        for node in document.root.find_all("N"):
            seen.append(int(node.attributes["seq"]))
    return seen


@settings(max_examples=80, deadline=None)
@given(conditions, steps)
def test_every_accepted_notification_reported_exactly_once(when, step_list):
    reporter, total = run_workload(when, None, step_list)
    seen = delivered_sequences(reporter)
    assert sorted(seen) == list(range(1, total + 1))
    assert len(seen) == len(set(seen))


@settings(max_examples=60, deadline=None)
@given(steps, st.integers(1, 5))
def test_atmost_count_conserves_accepted_only(step_list, limit):
    when = ReportCondition(terms=(CountCondition(threshold=3),))
    reporter, total = run_workload(when, limit, step_list)
    seen = delivered_sequences(reporter)
    accepted = total - reporter.stats.notifications_suppressed
    assert len(seen) == accepted
    assert len(seen) == len(set(seen))


@settings(max_examples=60, deadline=None)
@given(conditions, steps)
def test_reports_never_empty(when, step_list):
    reporter, _ = run_workload(when, None, step_list)
    for number in range(reporter.publisher.count(1)):
        body = reporter.publisher.fetch(1, number)
        assert parse(body).root.first("N") is not None
