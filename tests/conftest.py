"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.pipeline import SubscriptionSystem
from repro.repository import Repository, SemanticClassifier
from repro.webworld import SiteGenerator


@pytest.fixture
def clock() -> SimulatedClock:
    return SimulatedClock(start=1_000_000.0)


@pytest.fixture
def classifier() -> SemanticClassifier:
    instance = SemanticClassifier()
    instance.add_rule("culture", ["museum", "painting"])
    instance.add_rule("commerce", ["catalog", "Product"])
    return instance


@pytest.fixture
def repository(classifier, clock) -> Repository:
    return Repository(classifier=classifier, clock=clock)


@pytest.fixture
def system(classifier, clock) -> SubscriptionSystem:
    return SubscriptionSystem(clock=clock, classifier=classifier)


@pytest.fixture
def sitegen() -> SiteGenerator:
    return SiteGenerator(seed=42)
