import pytest

from repro.errors import PathSyntaxError
from repro.xmlstore import parse, parse_path


@pytest.fixture
def doc():
    return parse(
        "<museum>"
        "  <name>Rijks</name>"
        '  <painting year="1642"><title>Night Watch</title></painting>'
        '  <wing><painting year="1658"><title>Milkmaid</title></painting></wing>'
        "</museum>"
    )


class TestChildAxis:
    def test_single_step(self, doc):
        matches = list(parse_path("painting").select(doc.root))
        assert len(matches) == 1
        assert matches[0].attributes["year"] == "1642"

    def test_two_steps(self, doc):
        matches = list(parse_path("wing/painting").select(doc.root))
        assert len(matches) == 1
        assert matches[0].attributes["year"] == "1658"

    def test_no_match(self, doc):
        assert list(parse_path("sculpture").select(doc.root)) == []


class TestDescendantAxis:
    def test_leading_double_slash(self, doc):
        matches = list(parse_path("//painting").select(doc.root))
        assert len(matches) == 2

    def test_self_descendant(self, doc):
        matches = list(parse_path("self//title").select(doc.root))
        assert len(matches) == 2

    def test_mid_path_descendant(self, doc):
        matches = list(parse_path("wing//title").select(doc.root))
        assert [m.text_content() for m in matches] == ["Milkmaid"]

    def test_no_duplicates_from_overlapping_axes(self, doc):
        matches = list(parse_path("//painting//title").select(doc.root))
        assert len(matches) == 2


class TestWildcardsAndAttributes:
    def test_wildcard_step(self, doc):
        matches = list(parse_path("*/title").select(doc.root))
        assert len(matches) == 1  # only painting (child) has title child

    def test_attribute_selection(self, doc):
        years = list(parse_path("//painting@year").select(doc.root))
        assert sorted(years) == ["1642", "1658"]

    def test_attribute_absent_skipped(self, doc):
        assert list(parse_path("name@year").select(doc.root)) == []

    def test_first_helper(self, doc):
        assert parse_path("//title").first(doc.root).text_content() == (
            "Night Watch"
        )


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "bad", ["", "  ", "a///b", "a/@", "@attr", "a b", "self"]
    )
    def test_rejected(self, bad):
        with pytest.raises(PathSyntaxError):
            parse_path(bad)

    def test_self_with_attribute_allowed(self):
        path = parse_path("self@id")
        assert path.attribute == "id"
        assert path.steps == ()
