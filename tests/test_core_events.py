import pytest

from repro.core import AtomicEventKey, EventRegistry
from repro.errors import MonitoringError, UnknownEventError


def key(kind, argument=None):
    return AtomicEventKey(kind, argument)


class TestAtomicInterning:
    def test_same_key_shares_code(self):
        registry = EventRegistry()
        a = registry.intern_atomic(key("url_extends", "http://x/"))
        b = registry.intern_atomic(key("url_extends", "http://x/"))
        assert a == b

    def test_different_arguments_differ(self):
        registry = EventRegistry()
        a = registry.intern_atomic(key("url_extends", "http://x/"))
        b = registry.intern_atomic(key("url_extends", "http://y/"))
        assert a != b

    def test_reverse_lookup(self):
        registry = EventRegistry()
        code = registry.intern_atomic(key("domain_eq", "biology"))
        assert registry.atomic_key(code) == key("domain_eq", "biology")

    def test_unknown_code_raises(self):
        with pytest.raises(UnknownEventError):
            EventRegistry().atomic_key(99)

    def test_weakness_classification(self):
        assert key("doc_new").weak
        assert key("doc_updated").weak
        assert key("doc_unchanged").weak
        assert not key("doc_deleted").weak
        assert not key("url_extends", "x").weak


class TestComplexRegistration:
    def test_register_returns_sorted_codes(self):
        registry = EventRegistry()
        event = registry.register_complex(
            [key("self_contains", "zz"), key("url_extends", "http://a/")]
        )
        assert list(event.atomic_codes) == sorted(event.atomic_codes)
        assert event.size == 2

    def test_duplicate_conditions_collapse(self):
        registry = EventRegistry()
        event = registry.register_complex(
            [key("url_eq", "u"), key("url_eq", "u")]
        )
        assert event.size == 1

    def test_empty_conjunction_rejected(self):
        with pytest.raises(MonitoringError):
            EventRegistry().register_complex([])

    def test_weak_only_conjunction_rejected(self):
        with pytest.raises(MonitoringError):
            EventRegistry().register_complex([key("doc_new")])

    def test_weak_plus_strong_accepted(self):
        registry = EventRegistry()
        event = registry.register_complex(
            [key("doc_updated"), key("url_extends", "http://x/")]
        )
        assert event.size == 2

    def test_complex_codes_unique(self):
        registry = EventRegistry()
        first = registry.register_complex([key("url_eq", "a")])
        second = registry.register_complex([key("url_eq", "b")])
        assert first.code != second.code


class TestUnregistration:
    def test_unregister_returns_event(self):
        registry = EventRegistry()
        event = registry.register_complex([key("url_eq", "a")])
        removed = registry.unregister_complex(event.code)
        assert removed == event
        assert registry.complex_count() == 0

    def test_unknown_unregister_raises(self):
        with pytest.raises(UnknownEventError):
            EventRegistry().unregister_complex(42)

    def test_shared_atomic_event_survives_partial_removal(self):
        registry = EventRegistry()
        shared = key("url_extends", "http://x/")
        first = registry.register_complex([shared, key("url_eq", "a")])
        registry.register_complex([shared, key("url_eq", "b")])
        registry.unregister_complex(first.code)
        assert registry.atomic_code(shared) is not None

    def test_atomic_event_retired_with_last_user(self):
        registry = EventRegistry()
        only = key("self_contains", "rare")
        event = registry.register_complex([only])
        registry.unregister_complex(event.code)
        assert registry.atomic_code(only) is None
        assert registry.atomic_count() == 0


class TestPaperParameters:
    def test_average_conjunction_size(self):
        registry = EventRegistry()
        registry.register_complex([key("url_eq", "a")])
        registry.register_complex(
            [key("url_eq", "b"), key("url_eq", "c"), key("url_eq", "d")]
        )
        assert registry.average_conjunction_size() == 2.0

    def test_average_fanout_k(self):
        registry = EventRegistry()
        shared = key("url_extends", "http://amazon/")
        registry.register_complex([shared, key("url_eq", "a")])
        registry.register_complex([shared, key("url_eq", "b")])
        # shared has fanout 2; "a" and "b" have fanout 1 -> k = 4/3.
        assert registry.average_fanout() == pytest.approx(4 / 3)

    def test_empty_registry_parameters(self):
        registry = EventRegistry()
        assert registry.average_conjunction_size() == 0.0
        assert registry.average_fanout() == 0.0
