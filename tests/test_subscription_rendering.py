import pytest

from repro.core.processor import Notification
from repro.language.ast import SelectSpec
from repro.language.parser import parse_subscription
from repro.subscription.rendering import (
    NotificationBinding,
    item_event_codes,
)
from repro.xmlstore import serialize


def binding(select, item_codes=None):
    return NotificationBinding(
        subscription_id=1,
        subscription_name="S",
        query_name="Q",
        select=select,
        item_codes=item_codes or {},
    )


def notification(data=None):
    return Notification(
        complex_code=7,
        document_url="http://inria.fr/Xy/index.html",
        timestamp=990_000_000.0,
        data=data or {},
    )


class TestTemplateRendering:
    def test_url_pseudo_variable_substituted(self):
        spec = SelectSpec(template="<UpdatedPage url=URL/>")
        (element,) = binding(spec).render(notification())
        assert element.tag == "UpdatedPage"
        assert element.attributes["url"] == "http://inria.fr/Xy/index.html"

    def test_date_pseudo_variable(self):
        spec = SelectSpec(template="<Seen at=DATE/>")
        (element,) = binding(spec).render(notification())
        assert element.attributes["at"] == "990000000"

    def test_quoted_attributes_left_alone(self):
        spec = SelectSpec(template='<Tag fixed="constant" url=URL/>')
        (element,) = binding(spec).render(notification())
        assert element.attributes["fixed"] == "constant"

    def test_unknown_variable_becomes_literal(self):
        spec = SelectSpec(template="<Tag x=NOPE/>")
        (element,) = binding(spec).render(notification())
        assert element.attributes["x"] == "NOPE"

    def test_nested_template(self):
        spec = SelectSpec(template="<Outer><Inner url=URL/></Outer>")
        (element,) = binding(spec).render(notification())
        assert element.first("Inner").attributes["url"].startswith("http://")

    def test_fresh_elements_per_render(self):
        spec = SelectSpec(template="<UpdatedPage url=URL/>")
        b = binding(spec)
        first = b.render(notification())[0]
        second = b.render(notification())[0]
        assert first is not second


class TestItemRendering:
    def test_payload_elements_parsed_back(self):
        spec = SelectSpec(items=("X",))
        data = {42: ["<Member><name>preda</name></Member>"]}
        elements = binding(spec, {"X": 42}).render(notification(data))
        assert len(elements) == 1
        assert elements[0].first("name").text_content() == "preda"

    def test_multiple_payload_elements(self):
        spec = SelectSpec(items=("X",))
        data = {42: ["<m>1</m>", "<m>2</m>"]}
        elements = binding(spec, {"X": 42}).render(notification(data))
        assert [e.text_content() for e in elements] == ["1", "2"]

    def test_missing_payload_falls_back_to_default(self):
        spec = SelectSpec(items=("X",))
        elements = binding(spec, {"X": 42}).render(notification({}))
        assert elements[0].tag == "Notification"
        assert elements[0].attributes["query"] == "Q"

    def test_unparsable_payload_wrapped(self):
        spec = SelectSpec(items=("X",))
        data = {42: ["not xml at all"]}
        (element,) = binding(spec, {"X": 42}).render(notification(data))
        assert element.tag == "value"
        assert element.text_content() == "not xml at all"


class TestDefaultRendering:
    def test_default_notification_shape(self):
        (element,) = binding(SelectSpec()).render(notification())
        assert element.tag == "Notification"
        assert element.attributes["url"] == "http://inria.fr/Xy/index.html"
        assert element.attributes["query"] == "Q"
        assert "date" in element.attributes
        assert serialize(element).startswith("<Notification")


class TestItemEventCodes:
    def parse_query(self, text):
        return parse_subscription(text).monitoring[0]

    def test_direct_variable_target(self):
        query = self.parse_query(
            "subscription S\nmonitoring\nselect X\nfrom self//Member X\n"
            'where URL = "http://u/" and new X\nreport when immediate'
        )
        mapping = item_event_codes(query, [100, 200])
        assert mapping == {"X": 200}

    def test_tag_target_resolved_through_binding(self):
        query = self.parse_query(
            "subscription S\nmonitoring\nselect X\nfrom self//Product X\n"
            'where URL = "http://u/" and new Product contains "camera"\n'
            "report when immediate"
        )
        mapping = item_event_codes(query, [100, 200])
        assert mapping == {"X": 200}

    def test_unrelated_item_unmapped(self):
        query = self.parse_query(
            "subscription S\nmonitoring\nselect X\nfrom self//Member X\n"
            'where URL = "http://u/"\nreport when immediate'
        )
        assert item_event_codes(query, [100]) == {}
