import pytest

from repro.alerters import AlerterChain, HTMLAlerter, strip_markup
from repro.alerters.context import FetchedDocument
from repro.core import AtomicEventKey
from repro.diff.changes import DOC_NEW, DOC_UPDATED
from repro.errors import MonitoringError
from repro.repository import DocumentMeta
from repro.xmlstore import parse


def key(kind, argument=None):
    return AtomicEventKey(kind, argument)


def html_fetch(content, url="http://h/index.html", status=DOC_NEW):
    return FetchedDocument(
        url=url,
        meta=DocumentMeta(doc_id=1, url=url, kind="html"),
        status=status,
        raw_content=content,
    )


def xml_fetch(source, url="http://x/a.xml", status=DOC_NEW):
    return FetchedDocument(
        url=url,
        meta=DocumentMeta(doc_id=2, url=url),
        status=status,
        document=parse(source),
    )


class TestStripMarkup:
    def test_tags_removed(self):
        assert "camera" in strip_markup("<p>a <b>camera</b></p>")
        assert "<b>" not in strip_markup("<p>a <b>camera</b></p>")

    def test_script_and_style_bodies_removed(self):
        html = "<script>var camera=1;</script><p>text</p>"
        assert "camera" not in strip_markup(html)

    def test_plain_text_unchanged(self):
        assert strip_markup("no tags").strip() == "no tags"


class TestHTMLAlerter:
    def test_keyword_detected(self):
        alerter = HTMLAlerter()
        alerter.register(1, key("self_contains", "camera"))
        codes, _ = alerter.detect(html_fetch("<p>new camera deals</p>"))
        assert codes == {1}

    def test_keyword_in_markup_not_detected(self):
        alerter = HTMLAlerter()
        alerter.register(1, key("self_contains", "div"))
        assert alerter.detect(html_fetch("<div>plain</div>"))[0] == set()

    def test_unregister(self):
        alerter = HTMLAlerter()
        alerter.register(1, key("self_contains", "x"))
        alerter.unregister(1, key("self_contains", "x"))
        assert alerter.detect(html_fetch("x"))[0] == set()

    def test_rejects_other_kinds(self):
        with pytest.raises(MonitoringError):
            HTMLAlerter().register(1, key("url_eq", "u"))

    def test_xml_fetch_ignored(self):
        alerter = HTMLAlerter()
        alerter.register(1, key("self_contains", "word"))
        assert alerter.detect(xml_fetch("<a>word</a>"))[0] == set()


class TestChainRouting:
    def test_register_routes_by_kind(self):
        chain = AlerterChain()
        chain.register(1, key("url_extends", "http://a/"))
        chain.register(2, key("tag_present", ("p", "w", False)))
        alert = chain.build_alert(xml_fetch("<r><p>w</p></r>", "http://a/x"))
        assert alert is not None
        assert alert.event_codes == [1, 2]

    def test_self_contains_served_by_xml_and_html_alerters(self):
        chain = AlerterChain()
        chain.register(1, key("self_contains", "camera"))
        chain.register(2, key("url_extends", "http://"))
        xml_alert = chain.build_alert(xml_fetch("<r>camera</r>"))
        html_alert = chain.build_alert(html_fetch("<p>camera</p>"))
        assert 1 in xml_alert.event_codes
        assert 1 in html_alert.event_codes

    def test_unknown_kind_rejected(self):
        chain = AlerterChain()
        with pytest.raises(MonitoringError):
            chain.register(1, key("martian"))

    def test_unregister_stops_detection(self):
        chain = AlerterChain()
        chain.register(1, key("url_extends", "http://a/"))
        chain.unregister(1, key("url_extends", "http://a/"))
        assert chain.build_alert(xml_fetch("<r/>", "http://a/x")) is None


class TestWeakStrongGating:
    def test_alert_codes_are_sorted(self):
        chain = AlerterChain()
        # Register in an order that would naturally detect out of order.
        chain.register(9, key("url_extends", "http://a/"))
        chain.register(3, key("tag_present", ("p", None, False)))
        alert = chain.build_alert(xml_fetch("<r><p/></r>", "http://a/x"))
        assert alert.event_codes == sorted(alert.event_codes)

    def test_weak_only_detection_sends_no_alert(self):
        chain = AlerterChain()
        chain.register(1, key("doc_updated"))
        alert = chain.build_alert(
            xml_fetch("<r/>", status=DOC_UPDATED)
        )
        assert alert is None

    def test_weak_included_when_strong_fires(self):
        chain = AlerterChain()
        chain.register(1, key("doc_updated"))
        chain.register(2, key("url_extends", "http://a/"))
        alert = chain.build_alert(
            xml_fetch("<r/>", "http://a/x", status=DOC_UPDATED)
        )
        assert alert.event_codes == [1, 2]

    def test_nothing_detected_no_alert(self):
        chain = AlerterChain()
        chain.register(1, key("url_eq", "http://elsewhere/"))
        assert chain.build_alert(xml_fetch("<r/>")) is None
