from repro.xmlstore import parse
from repro.xmlstore.nodes import Document, ElementNode, TextNode


def build_sample():
    # <r><a>one</a><b><c>two</c></b></r>
    root = ElementNode("r")
    a = root.make_child("a", text="one")
    b = root.make_child("b")
    c = b.make_child("c", text="two")
    return root, a, b, c


class TestStructure:
    def test_levels(self):
        root, a, b, c = build_sample()
        assert root.level == 0
        assert a.level == 1
        assert c.level == 2

    def test_root_and_ancestors(self):
        root, _, b, c = build_sample()
        assert c.root() is root
        assert list(c.ancestors()) == [b, root]

    def test_sibling_index(self):
        root, a, b, _ = build_sample()
        assert a.sibling_index() == 0
        assert b.sibling_index() == 1
        assert root.sibling_index() == 0

    def test_detach(self):
        root, a, _, _ = build_sample()
        a.detach()
        assert a.parent is None
        assert all(child is not a for child in root.children)

    def test_insert_at_position(self):
        root, _, _, _ = build_sample()
        new = ElementNode("x")
        root.insert(1, new)
        assert root.children[1] is new
        assert new.parent is root

    def test_append_reparents(self):
        root, a, b, _ = build_sample()
        b.append(a)
        assert a.parent is b
        assert a not in root.children


class TestTraversals:
    def test_preorder_is_document_order(self):
        root, a, b, c = build_sample()
        elements = [n for n in root.preorder() if isinstance(n, ElementNode)]
        assert elements == [root, a, b, c]

    def test_postorder_children_before_parent(self):
        root, a, b, c = build_sample()
        order = [n for n in root.postorder() if isinstance(n, ElementNode)]
        assert order.index(c) < order.index(b)
        assert order.index(a) < order.index(root)
        assert order[-1] is root

    def test_postorder_includes_text_nodes(self):
        root, *_ = build_sample()
        texts = [n for n in root.postorder() if isinstance(n, TextNode)]
        assert [t.data for t in texts] == ["one", "two"]

    def test_traversal_counts_agree(self):
        root, *_ = build_sample()
        assert len(list(root.preorder())) == len(list(root.postorder()))


class TestContent:
    def test_text_content_concatenates_in_order(self):
        root, *_ = build_sample()
        assert root.text_content() == "onetwo"

    def test_find_all(self):
        doc = parse("<r><p/><q><p/></q></r>")
        assert len(list(doc.root.find_all("p"))) == 2

    def test_first_returns_document_order_match(self):
        doc = parse("<r><q><p n='deep'/></q><p n='late'/></r>")
        assert doc.root.first("p").attributes["n"] == "deep"

    def test_first_missing_returns_none(self):
        doc = parse("<r/>")
        assert doc.root.first("zzz") is None

    def test_get_attribute_with_default(self):
        doc = parse('<r a="1"/>')
        assert doc.root.get("a") == "1"
        assert doc.root.get("b", "fallback") == "fallback"


class TestMetrics:
    def test_subtree_size(self):
        root, *_ = build_sample()
        assert root.subtree_size() == 6  # r a text b c text

    def test_max_depth(self):
        root, *_ = build_sample()
        assert root.max_depth() == 3  # text under c

    def test_document_size_and_depth(self):
        doc = Document(build_sample()[0])
        assert doc.size() == 6
        assert doc.depth() == 3
