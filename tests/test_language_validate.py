import pytest

from repro.errors import SubscriptionError, WeakConditionError
from repro.language import parse_subscription, validate_subscription


def validated(source):
    subscription = parse_subscription(source)
    validate_subscription(subscription)
    return subscription


class TestWeakStrongRule:
    def test_weak_only_rejected(self):
        with pytest.raises(WeakConditionError):
            validated(
                "subscription S\nmonitoring\nselect X\nfrom self//a X\n"
                "where modified self\nreport when immediate"
            )

    def test_weak_plus_strong_accepted(self):
        validated(
            "subscription S\nmonitoring\nselect X\nfrom self//a X\n"
            'where modified self and URL extends "http://inria.fr/"\n'
            "report when immediate"
        )

    def test_deleted_self_counts_as_strong(self):
        # Deletion is not in the weak set (it is rarely raised).
        validated(
            "subscription S\nmonitoring\nselect X\nfrom self//a X\n"
            "where deleted self\nreport when immediate"
        )


class TestStructuralChecks:
    def test_empty_subscription_rejected(self):
        with pytest.raises(SubscriptionError):
            validated("subscription Empty")

    def test_missing_report_section_tolerated(self):
        subscription = validated(
            "subscription S\nmonitoring\nselect X\nfrom self//a X\n"
            'where URL = "http://u/"'
        )
        assert subscription.report is None

    def test_unbound_select_variable_rejected(self):
        with pytest.raises(SubscriptionError):
            validated(
                "subscription S\nmonitoring\nselect Y\nfrom self//a X\n"
                'where URL = "http://u/"\nreport when immediate'
            )

    def test_duplicate_query_names_rejected(self):
        with pytest.raises(SubscriptionError):
            validated(
                "subscription S\n"
                "monitoring Q\nselect X\nfrom self//a X\n"
                'where URL = "http://u/"\n'
                "monitoring Q\nselect X\nfrom self//a X\n"
                'where URL = "http://v/"\n'
                "report when immediate"
            )

    def test_virtual_only_subscription_is_valid(self):
        validated("subscription S\nvirtual Other.Query")

    def test_refresh_only_subscription_is_valid(self):
        validated('subscription S\nrefresh "http://u/" weekly')
