from repro.ids import InternedCodes, SequentialIdAllocator


class TestSequentialIdAllocator:
    def test_allocates_dense_sequence(self):
        allocator = SequentialIdAllocator()
        assert [allocator.allocate() for _ in range(3)] == [0, 1, 2]

    def test_start_offset(self):
        assert SequentialIdAllocator(start=10).allocate() == 10

    def test_released_ids_are_reused(self):
        allocator = SequentialIdAllocator()
        first = allocator.allocate()
        allocator.allocate()
        allocator.release(first)
        assert allocator.allocate() == first

    def test_reuse_can_be_disabled(self):
        allocator = SequentialIdAllocator(reuse_freed=False)
        first = allocator.allocate()
        allocator.release(first)
        assert allocator.allocate() == first + 1

    def test_high_water_mark(self):
        allocator = SequentialIdAllocator()
        for _ in range(5):
            allocator.allocate()
        assert allocator.high_water_mark == 5


class TestInternedCodes:
    def test_same_key_same_code(self):
        codes = InternedCodes()
        assert codes.intern("a") == codes.intern("a")

    def test_distinct_keys_distinct_codes(self):
        codes = InternedCodes()
        assert codes.intern("a") != codes.intern("b")

    def test_reverse_lookup(self):
        codes = InternedCodes()
        code = codes.intern(("url_extends", "http://x/"))
        assert codes.key_for(code) == ("url_extends", "http://x/")

    def test_code_for_unknown_is_none(self):
        assert InternedCodes().code_for("missing") is None

    def test_contains_and_len(self):
        codes = InternedCodes()
        codes.intern("a")
        assert "a" in codes
        assert "b" not in codes
        assert len(codes) == 1

    def test_release_frees_code_for_reuse(self):
        codes = InternedCodes()
        code = codes.intern("a")
        codes.release("a")
        assert "a" not in codes
        assert codes.intern("b") == code

    def test_release_unknown_is_noop(self):
        codes = InternedCodes()
        codes.release("never-seen")
        assert len(codes) == 0
