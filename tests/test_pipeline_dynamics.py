"""Dynamic behaviour under a running stream (Section 4.1: "Subscriptions
keep being added, removed and updated while the system is running")."""

import pytest

from repro.pipeline import SubscriptionSystem
from repro.webworld import ChangeModel, SiteGenerator, to_xml


def camera_subscription(name, threshold=99):
    return f"""
    subscription {name}
    monitoring Cam
    select X
    from self//Product X
    where URL extends "http://www.shop"
      and new Product contains "camera"
    report when count >= {threshold}
    """


class TestSubscriptionChurn:
    def test_add_remove_add_under_stream(self, system, clock):
        generator = SiteGenerator(seed=31)
        model = ChangeModel(seed=32)
        url = "http://www.shop0.example/catalog.xml"
        document = generator.catalog(products=6)

        first = system.subscribe(camera_subscription("A"), owner_email="a@x")
        system.feed_xml(url, to_xml(document))

        matched_with_a = 0
        for _ in range(4):
            clock.advance(3600)
            document = model.mutate(document)
            result = system.feed_xml(url, to_xml(document))
            matched_with_a += len(result.notifications)

        system.unsubscribe(first)
        for _ in range(4):
            clock.advance(3600)
            document = model.mutate(document)
            result = system.feed_xml(url, to_xml(document))
            assert result.notifications == []

        # The warehouse is tiny at this point, so "camera" exceeds the
        # cost controller's document-frequency bound; a privileged user
        # may still register it (Section 5.4).
        second = system.subscribe(
            camera_subscription("B"), owner_email="b@x", privileged=True
        )
        matched_with_b = 0
        for _ in range(6):
            clock.advance(3600)
            document = model.mutate(document)
            result = system.feed_xml(url, to_xml(document))
            matched_with_b += len(result.notifications)
        assert matched_with_a > 0 or matched_with_b > 0
        assert system.manager.count() == 1

    def test_many_subscriptions_share_structure(self, system):
        # 50 users watching overlapping prefixes: atomic events intern.
        for i in range(50):
            system.subscribe(
                f"""
                subscription User{i}
                monitoring M
                select <Hit url=URL/>
                where URL extends "http://www.shop{i % 5}.example/"
                  and modified self
                report when count >= 99
                """,
                owner_email=f"user{i}@x",
            )
        # 5 distinct prefixes + 1 weak doc_updated event.
        assert system.processor.registry.atomic_count() == 6
        assert len(system.processor.matcher) == 50

    def test_removal_is_complete(self, system):
        ids = [
            system.subscribe(camera_subscription(f"S{i}"), owner_email="u@x")
            for i in range(10)
        ]
        for sub_id in ids:
            system.unsubscribe(sub_id)
        assert system.processor.registry.atomic_count() == 0
        assert system.processor.registry.complex_count() == 0
        assert len(system.processor.matcher) == 0


class TestNotificationFanOut:
    def test_one_document_many_subscribers(self, system, clock):
        for i in range(20):
            system.subscribe(
                f"""
                subscription Watcher{i}
                monitoring M
                select <Hit url=URL/>
                where URL extends "http://popular.example/"
                  and modified self
                report when immediate
                """,
                owner_email=f"w{i}@x",
            )
        system.feed_xml("http://popular.example/page.xml", "<r/>")
        clock.advance(60)
        result = system.feed_xml(
            "http://popular.example/page.xml", "<r><x/></r>"
        )
        # Every subscriber's complex event matched the single document.
        assert len(result.notifications) == 20
        assert system.reporter.stats.reports_generated == 20
