import pytest

from repro.minisql import (
    BOOLEAN,
    Column,
    Database,
    Eq,
    Everything,
    INTEGER,
    IsNull,
    REAL,
    TEXT,
    schema,
)
from repro.minisql.table import Table


class TestOrderingWithNulls:
    def test_nulls_sort_last(self):
        table = Table(
            schema("t", Column("id", INTEGER, primary_key=True),
                   Column("v", INTEGER))
        )
        table.insert({"id": 1, "v": None})
        table.insert({"id": 2, "v": 5})
        table.insert({"id": 3, "v": 1})
        rows = table.select(order_by="v")
        assert [row["id"] for row in rows] == [3, 2, 1]


class TestMixedTypes:
    def test_real_column_roundtrip(self):
        table = Table(
            schema("t", Column("id", INTEGER, primary_key=True),
                   Column("score", REAL))
        )
        table.insert({"id": 1, "score": 3})
        assert table.get(1)["score"] == 3.0
        assert isinstance(table.get(1)["score"], float)

    def test_boolean_filtering(self):
        table = Table(
            schema("t", Column("id", INTEGER, primary_key=True),
                   Column("flag", BOOLEAN, nullable=False))
        )
        table.insert({"id": 1, "flag": True})
        table.insert({"id": 2, "flag": False})
        assert [r["id"] for r in table.select(Eq("flag", True))] == [1]


class TestWhereOnIndexedDeletes:
    def test_delete_by_secondary_index(self):
        table = Table(
            schema("t", Column("id", INTEGER, primary_key=True),
                   Column("tag", TEXT, nullable=False))
        )
        table.create_index("tag")
        for i in range(10):
            table.insert({"id": i, "tag": "even" if i % 2 == 0 else "odd"})
        assert table.delete(Eq("tag", "odd")) == 5
        assert table.count() == 5
        assert table.select(Eq("tag", "odd")) == []

    def test_is_null_scan(self):
        table = Table(
            schema("t", Column("id", INTEGER, primary_key=True),
                   Column("v", TEXT))
        )
        table.insert({"id": 1, "v": None})
        table.insert({"id": 2, "v": "x"})
        assert [r["id"] for r in table.select(IsNull("v"))] == [1]


class TestDatabaseCheckpointCycles:
    def test_multiple_checkpoint_cycles(self, tmp_path):
        path = str(tmp_path / "db.wal")
        db = Database(path=path)
        table = db.create_table(
            schema("t", Column("id", INTEGER, primary_key=True),
                   Column("v", TEXT))
        )
        for cycle in range(3):
            for i in range(5):
                table.insert({"id": cycle * 10 + i, "v": f"c{cycle}"})
            db.checkpoint()
        table.insert({"id": 999, "v": "tail"})
        db.close()
        recovered = Database.recover(path)
        assert len(recovered.table("t")) == 16
        assert recovered.table("t").get(999)["v"] == "tail"
        recovered.close()

    def test_checkpoint_on_memory_database_is_noop(self):
        db = Database()
        db.create_table(
            schema("t", Column("id", INTEGER, primary_key=True))
        )
        db.checkpoint()  # no path: silently does nothing
        assert db.table("t").count() == 0

    def test_select_everything_predicate(self):
        table = Table(schema("t", Column("id", INTEGER, primary_key=True)))
        table.insert({"id": 1})
        assert len(table.select(Everything())) == 1
