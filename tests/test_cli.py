import pytest

from repro.cli import main

SOURCE = """
subscription CliTest
monitoring Q
select <Hit url=URL/>
where URL extends "http://watched.example/"
  and modified self
report when immediate
"""

BAD_SOURCE = """
subscription Bad
monitoring
select X
from self//a X
where modified self
report when immediate
"""


@pytest.fixture
def subscription_file(tmp_path):
    path = tmp_path / "sub.xyl"
    path.write_text(SOURCE)
    return str(path)


class TestCheck:
    def test_valid_subscription(self, subscription_file, capsys):
        assert main(["check", subscription_file]) == 0
        out = capsys.readouterr().out
        assert "CliTest: OK" in out
        assert "monitoring queries : 1" in out

    def test_invalid_subscription(self, tmp_path, capsys):
        path = tmp_path / "bad.xyl"
        path.write_text(BAD_SOURCE)
        assert main(["check", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "broken.xyl"
        path.write_text("subscription")
        assert main(["check", str(path)]) == 1


class TestFmt:
    def test_canonical_output_reparses(self, subscription_file, capsys):
        assert main(["fmt", subscription_file]) == 0
        out = capsys.readouterr().out
        from repro.language import parse_subscription

        assert parse_subscription(out).name == "CliTest"

    def test_fmt_is_idempotent(self, subscription_file, capsys, tmp_path):
        main(["fmt", subscription_file])
        once = capsys.readouterr().out
        second = tmp_path / "canon.xyl"
        second.write_text(once)
        main(["fmt", str(second)])
        assert capsys.readouterr().out == once


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--sites", "3", "--days", "3"]) == 0
        out = capsys.readouterr().out
        assert "documents fed" in out


class TestStats:
    def test_stats_prints_snapshot_json(self, capsys):
        import json

        assert main(["stats", "--sites", "3", "--days", "2"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["documents_fed"] > 0
        assert "repository.store_xml" in snapshot["stages"]
        assert "mqp.process_alert" in snapshot["stages"]

    def test_stats_writes_metrics_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "snap.json"
        assert main(
            ["stats", "--sites", "3", "--days", "2",
             "--metrics-json", str(path)]
        ) == 0
        assert str(path) in capsys.readouterr().out
        snapshot = json.loads(path.read_text())
        assert snapshot["documents_fed"] > 0

    def test_stats_sharded_modes(self, capsys):
        import json

        for mode in ("flow", "subscriptions"):
            assert main(
                ["stats", "--sites", "3", "--days", "2",
                 "--shards", "2", "--shard-mode", mode]
            ) == 0
            snapshot = json.loads(capsys.readouterr().out)
            assert len(snapshot["shard_load"]) == 2

    def test_demo_metrics_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "demo.json"
        assert main(
            ["demo", "--sites", "3", "--days", "3",
             "--metrics-json", str(path)]
        ) == 0
        assert "documents fed" in capsys.readouterr().out
        snapshot = json.loads(path.read_text())
        assert "histograms" in snapshot and "counters" in snapshot


class TestMatch:
    def test_match_micro_bench(self, capsys):
        code = main(
            [
                "match",
                "--engine", "aes",
                "--card-a", "1000",
                "--card-c", "1000",
                "--docs", "50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "us/doc" in out

    def test_all_engines_accepted(self, capsys):
        for engine in ("aes", "counting", "naive"):
            assert main(
                [
                    "match",
                    "--engine", engine,
                    "--card-a", "200",
                    "--card-c", "100",
                    "--docs", "20",
                ]
            ) == 0


class TestUsage:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "repro-monitor" in capsys.readouterr().out
