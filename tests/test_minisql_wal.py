import json
import os

import pytest

from repro.minisql import WriteAheadLog
from repro.minisql.wal import read_snapshot, snapshot_path, write_snapshot


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "test.wal")


class TestAppendAndRead:
    def test_records_roundtrip(self, wal_path):
        with WriteAheadLog(wal_path) as log:
            log.append({"op": "insert", "n": 1})
            log.append({"op": "delete", "n": 2})
        records = list(WriteAheadLog(wal_path).records())
        assert records == [{"op": "insert", "n": 1}, {"op": "delete", "n": 2}]

    def test_missing_file_yields_nothing(self, wal_path):
        assert list(WriteAheadLog(wal_path).records()) == []

    def test_sync_every_batches_flushes(self, wal_path):
        log = WriteAheadLog(wal_path, sync_every=10)
        for n in range(5):
            log.append({"n": n})
        log.close()
        assert len(list(WriteAheadLog(wal_path).records())) == 5

    def test_truncate_clears_log(self, wal_path):
        log = WriteAheadLog(wal_path)
        log.append({"n": 1})
        log.truncate()
        log.append({"n": 2})
        log.close()
        assert list(WriteAheadLog(wal_path).records()) == [{"n": 2}]

    def test_blank_lines_skipped(self, wal_path):
        with open(wal_path, "w", encoding="utf-8") as handle:
            handle.write('{"n": 1}\n\n{"n": 2}\n')
        assert len(list(WriteAheadLog(wal_path).records())) == 2


class TestSnapshots:
    def test_snapshot_roundtrip(self, wal_path):
        write_snapshot(wal_path, {"tables": [1, 2, 3]})
        assert read_snapshot(wal_path) == {"tables": [1, 2, 3]}

    def test_missing_snapshot_is_none(self, wal_path):
        assert read_snapshot(wal_path) is None

    def test_snapshot_write_is_atomic(self, wal_path):
        write_snapshot(wal_path, {"v": 1})
        write_snapshot(wal_path, {"v": 2})
        assert read_snapshot(wal_path) == {"v": 2}
        assert not os.path.exists(snapshot_path(wal_path) + ".tmp")
