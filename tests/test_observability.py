"""The observability layer: metrics primitives, tracing, and the guarantee
that instrumentation never perturbs pipeline behavior."""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.core.events import AtomicEventKey
from repro.core.processor import Alert, MonitoringQueryProcessor
from repro.observability import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    StageTracer,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    format_bound,
    render_key,
    split_key,
)
from repro.observability.names import ALL_METRIC_NAMES, STAGE_NAMES
from repro.pipeline import Fetch, SubscriptionSystem
from repro.webworld import SiteGenerator

SOURCE = """
subscription Obs
monitoring M
select <Hit url=URL/>
where URL extends "http://watched.example/"
  and modified self
report when count >= 3
"""


class TestPrimitives:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert registry.counter("c") is counter  # interned
        assert counter.value == 3.5
        gauge = registry.gauge("g")
        gauge.set(7)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 5.0

    def test_labelled_metrics_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("hits", shard="0").inc()
        registry.counter("hits", shard="1").inc(2)
        assert registry.counter_total("hits") == 3
        snap = registry.snapshot()
        assert snap["counters"]["hits{shard=0}"] == 1
        assert snap["counters"]["hits{shard=1}"] == 2

    def test_render_split_round_trip(self):
        key = render_key("mqp.process_alert", {"shard": "3", "mode": "flow"})
        assert key == "mqp.process_alert{mode=flow,shard=3}"
        name, labels = split_key(key)
        assert name == "mqp.process_alert"
        assert labels == {"shard": "3", "mode": "flow"}
        assert split_key("bare") == ("bare", {})

    def test_format_bound(self):
        assert format_bound(0.0005) == "0.0005"
        assert format_bound(5.0) == "5.0"
        assert format_bound(0.05) == "0.05"

    def test_histogram_bucket_placement_is_exact(self):
        histogram = Histogram(bounds=(0.001, 0.01, 0.1))
        for value in (0.0, 0.001, 0.005, 0.05, 0.5, 99.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 6
        assert snap["buckets"] == {
            "0.001": 2,   # 0.0 and exactly-0.001 (le semantics)
            "0.01": 1,    # 0.005
            "0.1": 1,     # 0.05
            "+Inf": 2,    # 0.5 and 99.0
        }
        assert snap["sum"] == pytest.approx(0.0 + 0.001 + 0.005 + 0.05
                                            + 0.5 + 99.0)

    def test_bucket_for_matches_observe(self):
        histogram = Histogram()
        for value in (0.0, 0.0007, 0.3, 10_000.0):
            histogram.observe(value)
            label = histogram.bucket_for(value)
            assert histogram.snapshot()["buckets"][label] >= 1


class TestDeterministicTracing:
    """Spans over a SimulatedClock-backed registry time *exactly*."""

    def test_exact_bucket_counts_under_simulated_clock(self):
        clock = SimulatedClock(100.0)
        registry = MetricsRegistry(clock)
        tracer = StageTracer(registry, keep=8)
        # Mid-bucket durations so float arithmetic on clock timestamps can
        # never push an observation across a bucket boundary.
        durations = (0.003, 0.0004, 2.0, 0.0)
        for duration in durations:
            with tracer.span("stage.a"):
                clock.advance(duration)
        histogram = tracer.stage_histogram("stage.a")
        snap = histogram.snapshot()
        assert snap["count"] == len(durations)
        assert snap["sum"] == pytest.approx(sum(durations))
        expected = {format_bound(b): 0 for b in DEFAULT_LATENCY_BUCKETS}
        expected["+Inf"] = 0
        expected["0.005"] = 1   # 0.003
        expected["0.0005"] = 2  # 0.0004 and the zero-length span
        expected["5.0"] = 1     # 2.0
        assert snap["buckets"] == expected

    def test_span_records_exact_start_end(self):
        clock = SimulatedClock(50.0)
        tracer = StageTracer(MetricsRegistry(clock), keep=4)
        with tracer.span("stage.b", shard="1"):
            clock.advance(1.5)
        (span,) = tracer.recent()
        assert (span.stage, span.start, span.end) == ("stage.b", 50.0, 51.5)
        assert span.duration == 1.5
        assert span.labels == {"shard": "1"}

    def test_span_closes_on_exception(self):
        clock = SimulatedClock()
        tracer = StageTracer(MetricsRegistry(clock), keep=4)
        with pytest.raises(RuntimeError):
            with tracer.span("stage.c"):
                clock.advance(0.25)
                raise RuntimeError("boom")
        histogram = tracer.stage_histogram("stage.c")
        assert histogram.count == 1
        assert histogram.snapshot()["buckets"]["0.5"] == 1

    def test_retention_ring_is_bounded(self):
        clock = SimulatedClock()
        tracer = StageTracer(MetricsRegistry(clock), keep=2)
        for _ in range(5):
            with tracer.span("stage.d"):
                clock.advance(0.001)
        assert len(tracer.recent()) == 2
        assert tracer.stage_histogram("stage.d").count == 5

    def test_default_tracer_keeps_no_spans(self):
        clock = SimulatedClock()
        tracer = StageTracer(MetricsRegistry(clock))
        with tracer.span("stage.e"):
            pass
        assert tracer.recent() == []


class TestNullRegistryNeutrality:
    """Observability must not perturb behavior: a no-op registry leaves
    results byte-identical to the instrumented defaults."""

    @staticmethod
    def _feed_processor(metrics):
        processor = MonitoringQueryProcessor(
            clock=SimulatedClock(1_000.0), metrics=metrics
        )
        events = [
            processor.register(
                [
                    AtomicEventKey("url_eq", f"http://s{i}/"),
                    AtomicEventKey("dtd_eq", f"d{i % 2}"),
                ]
            )
            for i in range(5)
        ]
        results = []
        for i, event in enumerate(events):
            alert = Alert(
                f"http://doc{i}/",
                sorted(event.atomic_codes),
                data={min(event.atomic_codes): f"payload-{i}"},
            )
            results.append(processor.process_alert(alert))
        return results, processor.stats

    def test_process_alert_results_byte_identical(self):
        null_results, null_stats = self._feed_processor(NULL_REGISTRY)
        live_results, live_stats = self._feed_processor(
            MetricsRegistry(SimulatedClock(1_000.0))
        )
        assert repr(null_results) == repr(live_results)
        assert null_stats.as_dict() == live_stats.as_dict()

    @staticmethod
    def _run_system(metrics):
        system = SubscriptionSystem(
            clock=SimulatedClock(1_000_000.0), metrics=metrics
        )
        system.subscribe(SOURCE, owner_email="u@x")
        transcripts = []
        for i in range(4):
            url = f"http://watched.example/p{i}.xml"
            system.feed_xml(url, "<r/>")
            system.clock.advance(30)
            result = system.feed_xml(url, "<r><x/></r>")
            transcripts.append(
                (result.outcome.status, repr(result.notifications))
            )
        system.advance_days(1)
        emails = [(m.recipient, m.body) for m in system.email_sink.sent]
        return transcripts, emails

    def test_full_pipeline_byte_identical(self):
        null_run = self._run_system(NullRegistry())
        live_run = self._run_system(None)  # default live registry
        assert null_run == live_run

    def test_null_registry_snapshot_is_empty(self):
        system = SubscriptionSystem(
            clock=SimulatedClock(1_000_000.0), metrics=NULL_REGISTRY
        )
        system.subscribe(SOURCE, owner_email="u@x")
        system.feed_xml("http://watched.example/p.xml", "<r/>")
        snapshot = system.metrics_snapshot()
        assert snapshot["documents_fed"] == 1  # plain attrs still work
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}


class TestSystemSnapshot:
    """Acceptance: a 100-document webworld stream yields per-stage counters
    and latency histograms covering every stage, with repository histogram
    totals equal to ``documents_fed``."""

    def build_system(self, shards=2):
        return SubscriptionSystem(
            clock=SimulatedClock(990_000_000.0),
            shards=shards,
            shard_mode="flow",
        )

    def feed_webworld(self, system, documents=100):
        generator = SiteGenerator(seed=11)
        urls = [
            f"http://watched.example/shop{i}/catalog.xml"
            for i in range(documents // 2)
        ]
        for url in urls:  # first crawl: all new
            system.feed_xml(url, generator.catalog(products=3))
            system.clock.advance(1.0)
        for url in urls:  # second crawl: all updated
            system.feed_xml(url, generator.catalog(products=4))
            system.clock.advance(1.0)

    def test_snapshot_covers_every_stage(self):
        system = self.build_system()
        system.subscribe(SOURCE, owner_email="u@x")
        self.feed_webworld(system)
        system.advance_days(1)
        snapshot = system.metrics_snapshot()

        assert snapshot["documents_fed"] == 100
        stages = snapshot["stages"]
        for stage in STAGE_NAMES:
            assert stage in stages, f"stage {stage} missing from snapshot"
        # Histogram totals across the repository equal documents fed.
        assert (
            stages["repository.store_xml"] + stages["repository.store_html"]
            == snapshot["documents_fed"]
        )
        assert stages["alerters.build_alert"] == snapshot["documents_fed"]
        assert stages["triggers.tick"] > 0
        assert stages["reporter.tick"] > 0
        # Per-shard MQP histograms with shard labels.
        histograms = snapshot["histograms"]
        shard_keys = [
            key
            for key in histograms
            if key.startswith("mqp.process_alert.latency_seconds{shard=")
        ]
        assert len(shard_keys) == 2
        assert (
            sum(histograms[key]["count"] for key in shard_keys)
            == stages["mqp.process_alert"]
        )
        # Load distribution mirrors the per-shard alert counts.
        assert sum(snapshot["shard_load"].values()) == stages[
            "mqp.process_alert"
        ]
        assert snapshot["notifications_emitted"] == 50
        assert snapshot["gauges"]["pipeline.subscriptions"] == 1.0

    def test_latencies_deterministic_under_simulated_clock(self):
        # The registry times with the system's SimulatedClock, which never
        # advances inside a stage, so every observation is exactly 0.0 and
        # lands in the first bucket.
        system = self.build_system()
        system.subscribe(SOURCE, owner_email="u@x")
        self.feed_webworld(system, documents=20)
        snapshot = system.metrics_snapshot()
        first = format_bound(DEFAULT_LATENCY_BUCKETS[0])
        for key, payload in snapshot["histograms"].items():
            if ".latency_seconds" not in key:
                continue  # e.g. executor.batch_size counts sizes, not time
            assert payload["buckets"][first] == payload["count"], key
            assert payload["sum"] == 0.0

    def test_single_processor_gets_shard_zero_label(self):
        system = SubscriptionSystem(clock=SimulatedClock(1_000_000.0))
        system.subscribe(SOURCE, owner_email="u@x")
        system.feed_xml("http://watched.example/p.xml", "<r/>")
        histograms = system.metrics_snapshot()["histograms"]
        assert "mqp.process_alert.latency_seconds{shard=0}" in histograms

    def test_outcome_counters_track_statuses(self):
        system = self.build_system()
        system.feed_xml("http://watched.example/a.xml", "<r/>")
        system.feed_xml("http://watched.example/a.xml", "<r/>")
        system.feed_xml("http://watched.example/a.xml", "<r><x/></r>")
        system.feed_html("http://watched.example/h", "hello")
        counters = system.metrics_snapshot()["counters"]
        assert counters["repository.outcomes{kind=xml,status=new}"] == 1
        assert counters["repository.outcomes{kind=xml,status=unchanged}"] == 1
        assert counters["repository.outcomes{kind=xml,status=updated}"] == 1
        assert counters["repository.outcomes{kind=html,status=new}"] == 1


class TestStreamRejections:
    def test_all_repro_errors_are_counted_with_reasons(self):
        system = SubscriptionSystem(clock=SimulatedClock(1_000_000.0))
        # Same URL first stored as HTML, then fed as XML: RepositoryError.
        system.feed_html("http://confused.example/", "hello")
        stream = [
            Fetch(url="http://ok.example/a.xml", content="<r/>"),
            Fetch(url="http://bad.example/b.xml", content="<never closed"),
            Fetch(url="http://confused.example/", content="<r/>"),
        ]
        results = system.run_stream(stream)
        assert len(results) == 1
        assert system.documents_rejected == 2
        snapshot = system.metrics_snapshot()
        assert snapshot["rejections"] == {
            "XMLSyntaxError": 1,
            "RepositoryError": 1,
        }

    def test_skip_malformed_false_still_raises(self):
        from repro.errors import XMLSyntaxError

        system = SubscriptionSystem(clock=SimulatedClock(1_000_000.0))
        with pytest.raises(XMLSyntaxError):
            system.run_stream(
                [Fetch(url="http://bad/", content="<oops")],
                skip_malformed=False,
            )
        assert system.documents_rejected == 0

    def test_rejected_documents_do_not_skew_stage_histograms(self):
        system = SubscriptionSystem(clock=SimulatedClock(1_000_000.0))
        system.run_stream(
            [
                Fetch(url="http://ok/a.xml", content="<r/>"),
                Fetch(url="http://bad/", content="<oops"),
            ]
        )
        stages = system.metrics_snapshot()["stages"]
        assert stages["repository.store_xml"] == system.documents_fed == 1


class TestMetricNamesCatalogue:
    def test_all_names_sorted_and_unique(self):
        assert list(ALL_METRIC_NAMES) == sorted(set(ALL_METRIC_NAMES))

    def test_every_stage_has_a_latency_metric(self):
        for stage in STAGE_NAMES:
            assert f"{stage}.latency_seconds" in ALL_METRIC_NAMES
