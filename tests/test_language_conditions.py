import pytest

from repro.errors import SubscriptionError
from repro.language import condition_event_key, last_tag_of_path
from repro.language.ast import AtomicCondition, FromBinding
from repro.language.conditions import (
    URL_ALERTER_KINDS,
    XML_ALERTER_KINDS,
    resolve_target_tag,
)


class TestTargetResolution:
    def test_last_tag_of_simple_path(self):
        assert last_tag_of_path("self//Member") == "Member"
        assert last_tag_of_path("catalog/Product") == "Product"

    def test_last_tag_rejects_self_only(self):
        with pytest.raises(SubscriptionError):
            last_tag_of_path("self")
        with pytest.raises(SubscriptionError):
            last_tag_of_path("a/*")

    def test_variable_resolves_through_binding(self):
        bindings = [FromBinding(path="self//Member", variable="X")]
        assert resolve_target_tag("X", bindings) == "Member"

    def test_literal_tag_passes_through(self):
        assert resolve_target_tag("Product", []) == "Product"


class TestKeyMapping:
    def test_url_extends(self):
        key = condition_event_key(
            AtomicCondition(kind="url_extends", string="http://x/")
        )
        assert key.kind == "url_extends"
        assert key.argument == "http://x/"

    def test_integer_ids_coerced(self):
        key = condition_event_key(
            AtomicCondition(kind="dtdid_eq", number=7.0)
        )
        assert key.argument == 7 and isinstance(key.argument, int)

    def test_dates_keep_comparator(self):
        key = condition_event_key(
            AtomicCondition(
                kind="last_update", comparator=">=", number=990403200.0
            )
        )
        assert key.argument == (">=", 990403200.0)

    def test_self_contains_normalized(self):
        key = condition_event_key(
            AtomicCondition(kind="self_contains", string="CaMeRa")
        )
        assert key.argument == "camera"

    def test_doc_status_keys(self):
        for change_kind, expected in [
            ("new", "doc_new"),
            ("updated", "doc_updated"),
            ("unchanged", "doc_unchanged"),
            ("deleted", "doc_deleted"),
        ]:
            key = condition_event_key(
                AtomicCondition(kind="doc_status", change_kind=change_kind)
            )
            assert key.kind == expected

    def test_element_condition_with_variable(self):
        bindings = [FromBinding(path="self//Member", variable="X")]
        key = condition_event_key(
            AtomicCondition(kind="element", target="X", change_kind="new"),
            bindings,
        )
        assert key.kind == "tag_new"
        assert key.argument == ("Member", None, False)

    def test_element_condition_with_word_and_strict(self):
        key = condition_event_key(
            AtomicCondition(
                kind="element",
                target="category",
                change_kind=None,
                string="Hi-Fi",
                strict=True,
            )
        )
        assert key.kind == "tag_present"
        assert key.argument == ("category", "hi-fi", True)

    def test_same_condition_same_key(self):
        condition = AtomicCondition(kind="url_eq", string="http://a/")
        assert condition_event_key(condition) == condition_event_key(
            condition
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(SubscriptionError):
            condition_event_key(AtomicCondition(kind="martian"))


class TestAlerterRouting:
    def test_kind_families_are_disjoint(self):
        assert not (URL_ALERTER_KINDS & XML_ALERTER_KINDS)

    def test_every_mapped_kind_has_an_alerter(self):
        conditions = [
            AtomicCondition(kind="url_extends", string="http://abcdef/"),
            AtomicCondition(kind="url_eq", string="u"),
            AtomicCondition(kind="filename_eq", string="f"),
            AtomicCondition(kind="dtd_eq", string="d"),
            AtomicCondition(kind="dtdid_eq", number=1),
            AtomicCondition(kind="docid_eq", number=1),
            AtomicCondition(kind="domain_eq", string="bio"),
            AtomicCondition(kind="last_accessed", comparator="<", number=1.0),
            AtomicCondition(kind="last_update", comparator=">", number=1.0),
            AtomicCondition(kind="self_contains", string="w"),
            AtomicCondition(kind="doc_status", change_kind="new"),
            AtomicCondition(kind="element", target="t"),
            AtomicCondition(kind="element", target="t", change_kind="new"),
            AtomicCondition(kind="element", target="t", change_kind="updated"),
            AtomicCondition(kind="element", target="t", change_kind="deleted"),
        ]
        for condition in conditions:
            key = condition_event_key(condition)
            assert key.kind in URL_ALERTER_KINDS | XML_ALERTER_KINDS
