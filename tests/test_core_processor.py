import pytest

from repro.clock import SimulatedClock
from repro.core import (
    Alert,
    AtomicEventKey,
    CountingMatcher,
    MonitoringQueryProcessor,
)


def key(kind, argument=None):
    return AtomicEventKey(kind, argument)


@pytest.fixture
def processor():
    return MonitoringQueryProcessor(clock=SimulatedClock(500.0))


class TestRegistration:
    def test_register_then_match(self, processor):
        event = processor.register(
            [key("url_extends", "http://x/"), key("doc_updated")]
        )
        alert = Alert("http://x/p", sorted(event.atomic_codes))
        notifications = processor.process_alert(alert)
        assert [n.complex_code for n in notifications] == [event.code]

    def test_notification_carries_url_time_and_data(self, processor):
        event = processor.register([key("url_eq", "http://x/p")])
        code = event.atomic_codes[0]
        alert = Alert("http://x/p", [code], data={code: ["<x/>"]})
        (notification,) = processor.process_alert(alert)
        assert notification.document_url == "http://x/p"
        assert notification.timestamp == 500.0
        assert notification.data[code] == ["<x/>"]

    def test_unregister_stops_matching(self, processor):
        event = processor.register([key("url_eq", "a")])
        processor.unregister(event.code)
        alert = Alert("a", list(event.atomic_codes))
        assert processor.process_alert(alert) == []

    def test_shared_registry_interning(self, processor):
        first = processor.register([key("url_eq", "a"), key("doc_updated")])
        second = processor.register([key("url_eq", "a"), key("dtd_eq", "d")])
        shared = set(first.atomic_codes) & set(second.atomic_codes)
        assert len(shared) == 1


class TestSinks:
    def test_sink_receives_batch(self, processor):
        event_a = processor.register([key("url_eq", "u")])
        event_b = processor.register(
            [key("url_eq", "u"), key("dtd_eq", "d")]
        )
        received = []
        processor.add_sink(received.append)
        codes = sorted(set(event_a.atomic_codes) | set(event_b.atomic_codes))
        processor.process_alert(Alert("u", codes))
        # One batch ("all the complex events ... are sent in one batch").
        assert len(received) == 1
        assert {n.complex_code for n in received[0]} == {
            event_a.code,
            event_b.code,
        }

    def test_sink_not_called_for_empty_match(self, processor):
        processor.register([key("url_eq", "u")])
        received = []
        processor.add_sink(received.append)
        processor.process_alert(Alert("other", [999]))
        assert received == []


class TestStats:
    def test_counters(self, processor):
        event = processor.register([key("url_eq", "u")])
        processor.process_alert(Alert("u", list(event.atomic_codes)))
        processor.process_alert(Alert("v", [9999]))
        stats = processor.stats
        assert stats.alerts_processed == 2
        assert stats.notifications_sent == 1
        assert stats.complex_registered == 1
        assert stats.average_event_set_size == 1.0

    def test_stats_dict(self, processor):
        payload = processor.stats.as_dict()
        assert "alerts_processed" in payload


class TestPluggableEngine:
    def test_counting_engine_behind_facade(self):
        processor = MonitoringQueryProcessor(
            matcher_factory=CountingMatcher
        )
        event = processor.register([key("url_eq", "u"), key("doc_updated")])
        notifications = processor.process_alert(
            Alert("u", sorted(event.atomic_codes))
        )
        assert len(notifications) == 1
        assert processor.matcher.name == "counting"
