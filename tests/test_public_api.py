"""The package's public surface: everything __all__ promises exists."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.alerters",
    "repro.api",
    "repro.core",
    "repro.diff",
    "repro.faults",
    "repro.language",
    "repro.minisql",
    "repro.observability",
    "repro.pipeline",
    "repro.query",
    "repro.reporting",
    "repro.repository",
    "repro.subscription",
    "repro.triggers",
    "repro.webworld",
    "repro.xmlstore",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    for entry in module.__all__:
        assert hasattr(module, entry), f"{name}.{entry} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings_present(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} undocumented"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_public_classes_documented():
    import repro

    for entry in repro.__all__:
        value = getattr(repro, entry)
        if isinstance(value, type):
            assert value.__doc__, f"repro.{entry} lacks a docstring"
