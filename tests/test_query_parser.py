import pytest

from repro.errors import QueryError
from repro.query import parse_query
from repro.query.ast import (
    OP_CONTAINS,
    OP_STRICT_CONTAINS,
    SOURCE_DOCUMENT,
    SOURCE_DOMAIN,
    SOURCE_VARIABLE,
)
from repro.query.parser import resolve_sources


class TestFromClauses:
    def test_paper_amsterdam_query(self):
        query = parse_query(
            'select p/title from culture/museum m, m/painting p '
            'where m/address contains "Amsterdam"'
        )
        query = resolve_sources(query, None)
        first, second = query.from_clauses
        assert first.source_kind == SOURCE_DOMAIN
        assert first.source_name == "culture"
        assert first.variable == "m"
        assert second.source_kind == SOURCE_VARIABLE
        assert second.source_name == "m"

    def test_doc_source(self):
        query = parse_query(
            'select x from doc("http://a/b.xml")//Member x'
        )
        clause = query.from_clauses[0]
        assert clause.source_kind == SOURCE_DOCUMENT
        assert clause.source_name == "http://a/b.xml"

    def test_variable_chain_resolution(self):
        query = resolve_sources(
            parse_query("select c from shop/a a, a/b b, b/c c"), None
        )
        kinds = [clause.source_kind for clause in query.from_clauses]
        assert kinds == [SOURCE_DOMAIN, SOURCE_VARIABLE, SOURCE_VARIABLE]

    def test_descendant_axis_in_from(self):
        query = parse_query("select x from culture//painting x")
        clause = query.from_clauses[0]
        assert clause.path.steps[0].axis == "descendant"


class TestWhere:
    def test_contains(self):
        query = parse_query(
            'select m from culture/museum m where m contains "camera"'
        )
        condition = query.conditions[0]
        assert condition.op == OP_CONTAINS
        assert condition.literal == "camera"

    def test_strict_contains(self):
        query = parse_query(
            'select m from culture/museum m where m strict contains "x"'
        )
        assert query.conditions[0].op == OP_STRICT_CONTAINS

    def test_comparisons(self):
        query = parse_query(
            "select p from culture/painting p where p/year >= 1600"
        )
        assert query.conditions[0].op == ">="
        assert query.conditions[0].literal == "1600"

    def test_multiple_conditions(self):
        query = parse_query(
            'select p from c/m m, m/p p where m contains "a" and p/y < 5'
        )
        assert len(query.conditions) == 2

    def test_condition_on_path(self):
        query = parse_query(
            'select m from c/museum m where m/address contains "Amsterdam"'
        )
        assert query.conditions[0].path is not None


class TestSelect:
    def test_multiple_items(self):
        query = parse_query("select p/title, p/year from c/p p")
        assert len(query.select_items) == 2

    def test_attribute_item(self):
        query = parse_query("select m@id from c/m m")
        assert query.select_items[0].path.attribute == "id"

    def test_bare_variable(self):
        query = parse_query("select m from c/m m")
        assert query.select_items[0].path is None


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "select",
            "select x",
            "select x from",
            "select x from c/m",              # missing variable
            "select zz from c/m m",           # unbound select variable
            "select m from c/m m where zz contains 'x'",
            "select m from c/m m where m ~ 'x'",
            "select m from c/m m where m contains",
            "select m from c/m m extra",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)
