import pytest

from repro.alerters import URLAlerter
from repro.alerters.context import FetchedDocument
from repro.core import AtomicEventKey
from repro.diff.changes import DOC_NEW, DOC_UNCHANGED, DOC_UPDATED
from repro.errors import MonitoringError
from repro.repository import DocumentMeta


def fetched(url="http://x/a.xml", status=DOC_NEW, **meta_kwargs):
    meta = DocumentMeta(doc_id=meta_kwargs.pop("doc_id", 1), url=url,
                        **meta_kwargs)
    return FetchedDocument(url=url, meta=meta, status=status)


def key(kind, argument=None):
    return AtomicEventKey(kind, argument)


@pytest.fixture
def alerter():
    return URLAlerter()


class TestURLConditions:
    def test_url_extends(self, alerter):
        alerter.register(1, key("url_extends", "http://inria.fr/Xy/"))
        codes, _ = alerter.detect(fetched("http://inria.fr/Xy/index.html"))
        assert codes == {1}
        codes, _ = alerter.detect(fetched("http://other.fr/"))
        assert codes == set()

    def test_url_eq(self, alerter):
        alerter.register(2, key("url_eq", "http://x/a.xml"))
        assert alerter.detect(fetched("http://x/a.xml"))[0] == {2}
        assert alerter.detect(fetched("http://x/a.xml?q"))[0] == set()

    def test_filename(self, alerter):
        alerter.register(3, key("filename_eq", "index.html"))
        assert alerter.detect(fetched("http://a/b/index.html"))[0] == {3}
        assert alerter.detect(fetched("http://a/b/other.html"))[0] == set()


class TestMetadataConditions:
    def test_dtd_url_and_id(self, alerter):
        alerter.register(4, key("dtd_eq", "http://d/c.dtd"))
        alerter.register(5, key("dtdid_eq", 9))
        document = fetched(dtd_url="http://d/c.dtd", dtd_id=9)
        assert alerter.detect(document)[0] == {4, 5}

    def test_docid(self, alerter):
        alerter.register(6, key("docid_eq", 42))
        assert alerter.detect(fetched(doc_id=42))[0] == {6}
        assert alerter.detect(fetched(doc_id=43))[0] == set()

    def test_domain(self, alerter):
        alerter.register(7, key("domain_eq", "biology"))
        assert alerter.detect(fetched(domain="biology"))[0] == {7}
        assert alerter.detect(fetched())[0] == set()

    def test_dates(self, alerter):
        alerter.register(8, key("last_update", (">=", 1000.0)))
        alerter.register(9, key("last_accessed", ("<", 500.0)))
        document = fetched(last_updated=2000.0, last_accessed=100.0)
        assert alerter.detect(document)[0] == {8, 9}
        document = fetched(last_updated=10.0, last_accessed=600.0)
        assert alerter.detect(document)[0] == set()


class TestStatusConditions:
    def test_statuses(self, alerter):
        alerter.register(10, key("doc_new"))
        alerter.register(11, key("doc_updated"))
        alerter.register(12, key("doc_unchanged"))
        assert alerter.detect(fetched(status=DOC_NEW))[0] == {10}
        assert alerter.detect(fetched(status=DOC_UPDATED))[0] == {11}
        assert alerter.detect(fetched(status=DOC_UNCHANGED))[0] == {12}


class TestRegistrationLifecycle:
    def test_unregister(self, alerter):
        alerter.register(1, key("url_extends", "http://a/"))
        alerter.unregister(1, key("url_extends", "http://a/"))
        assert alerter.detect(fetched("http://a/x"))[0] == set()

    def test_unregister_dates(self, alerter):
        alerter.register(8, key("last_update", (">=", 0.0)))
        alerter.unregister(8, key("last_update", (">=", 0.0)))
        assert alerter.detect(fetched(last_updated=5.0))[0] == set()

    def test_unknown_kind_rejected(self, alerter):
        with pytest.raises(MonitoringError):
            alerter.register(1, key("tag_present", ("t", None, False)))

    def test_trie_variant(self):
        alerter = URLAlerter(prefix_structure="trie")
        alerter.register(1, key("url_extends", "http://a/"))
        assert alerter.detect(fetched("http://a/x"))[0] == {1}


class TestMultipleConditionsOneDocument:
    def test_all_families_fire_together(self, alerter):
        alerter.register(1, key("url_extends", "http://inria.fr/"))
        alerter.register(2, key("filename_eq", "members.xml"))
        alerter.register(3, key("doc_updated"))
        document = fetched(
            "http://inria.fr/Xy/members.xml", status=DOC_UPDATED
        )
        assert alerter.detect(document)[0] == {1, 2, 3}
