import math

import pytest

from repro.clock import SECONDS_PER_DAY
from repro.webworld import ChangeRateEstimator, RefreshPlanner
from repro.webworld.refresh import (
    MAX_RATE_PER_DAY,
    MIN_RATE_PER_DAY,
    PageHistory,
)


class TestPageHistory:
    def test_first_fetch_establishes_baseline(self):
        history = PageHistory()
        history.record_fetch(at=0.0, changed=True)
        assert history.fetches == 0  # intervals need two fetches
        assert history.mean_interval is None

    def test_intervals_accumulate(self):
        history = PageHistory()
        history.record_fetch(0.0, changed=False)
        history.record_fetch(100.0, changed=True)
        history.record_fetch(300.0, changed=False)
        assert history.fetches == 2
        assert history.changes == 1
        assert history.mean_interval == 150.0


class TestChangeRateEstimator:
    def test_default_until_evidence(self):
        estimator = ChangeRateEstimator(default_rate_per_day=2.0)
        assert estimator.rate_per_day("http://x/") == 2.0
        estimator.record_fetch("http://x/", 0.0, changed=False)
        estimator.record_fetch("http://x/", 100.0, changed=False)
        # one interval only: still the default (needs >= 2)
        assert estimator.rate_per_day("http://x/") == 2.0

    def test_frequent_changes_give_high_rate(self):
        estimator = ChangeRateEstimator()
        for i in range(20):
            # changed on every daily fetch
            estimator.record_fetch(
                "http://hot/", i * SECONDS_PER_DAY, changed=(i > 0)
            )
        hot = estimator.rate_per_day("http://hot/")
        assert hot > 2.0

    def test_rare_changes_give_low_rate(self):
        estimator = ChangeRateEstimator()
        for i in range(20):
            estimator.record_fetch(
                "http://cold/", i * SECONDS_PER_DAY, changed=(i == 10)
            )
        cold = estimator.rate_per_day("http://cold/")
        assert cold < 0.2

    def test_ordering_of_estimates(self):
        estimator = ChangeRateEstimator()
        for i in range(15):
            estimator.record_fetch("http://a/", i * SECONDS_PER_DAY, i % 2 == 1)
            estimator.record_fetch("http://b/", i * SECONDS_PER_DAY, i % 5 == 1)
        assert estimator.rate_per_day("http://a/") > estimator.rate_per_day(
            "http://b/"
        )

    def test_rates_clamped(self):
        estimator = ChangeRateEstimator()
        for i in range(50):
            estimator.record_fetch("http://always/", i * 60.0, changed=i > 0)
            estimator.record_fetch(
                "http://never/", i * SECONDS_PER_DAY, changed=False
            )
        assert estimator.rate_per_day("http://always/") <= MAX_RATE_PER_DAY
        assert estimator.rate_per_day("http://never/") >= MIN_RATE_PER_DAY


class TestRefreshPlanner:
    def make_planner(self, budget=100.0):
        return RefreshPlanner(
            ChangeRateEstimator(), daily_budget=budget
        )

    def test_budget_respected(self):
        planner = self.make_planner(budget=50.0)
        for i in range(10):
            planner.add_page(f"http://p{i}/")
        assert planner.planned_fetches_per_day() == pytest.approx(
            50.0, rel=0.05
        )

    def test_importance_shortens_interval(self):
        planner = self.make_planner()
        planner.add_page("http://vip/", importance=10.0)
        planner.add_page("http://normal/", importance=1.0)
        intervals = planner.plan_intervals()
        assert intervals["http://vip/"] < intervals["http://normal/"]

    def test_change_rate_shortens_interval(self):
        estimator = ChangeRateEstimator()
        for i in range(15):
            estimator.record_fetch("http://hot/", i * SECONDS_PER_DAY, i > 0)
            estimator.record_fetch(
                "http://cold/", i * SECONDS_PER_DAY, i == 5
            )
        planner = RefreshPlanner(estimator, daily_budget=10.0)
        planner.add_page("http://hot/")
        planner.add_page("http://cold/")
        intervals = planner.plan_intervals()
        assert intervals["http://hot/"] < intervals["http://cold/"]

    def test_hint_caps_interval(self):
        planner = self.make_planner(budget=2.0)
        for i in range(10):
            planner.add_page(f"http://p{i}/")
        planner.apply_refresh_hints({"http://p0/": SECONDS_PER_DAY})
        intervals = planner.plan_intervals()
        assert intervals["http://p0/"] <= SECONDS_PER_DAY
        # The others absorbed the committed budget.
        assert intervals["http://p1/"] > SECONDS_PER_DAY

    def test_min_interval_floor(self):
        planner = RefreshPlanner(
            ChangeRateEstimator(), daily_budget=1e9, min_interval=3600.0
        )
        planner.add_page("http://x/")
        assert planner.plan_intervals()["http://x/"] == 3600.0

    def test_empty_planner(self):
        assert self.make_planner().plan_intervals() == {}

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            RefreshPlanner(ChangeRateEstimator(), daily_budget=0)

    def test_remove_page(self):
        planner = self.make_planner()
        planner.add_page("http://x/")
        planner.remove_page("http://x/")
        assert len(planner) == 0


class TestCrawlerIntegration:
    def test_apply_plan_updates_crawler(self):
        from repro.clock import SimulatedClock
        from repro.webworld import SimulatedCrawler, SiteGenerator

        clock = SimulatedClock(0.0)
        crawler = SimulatedCrawler(clock=clock, seed=1)
        crawler.add_xml_page(
            "http://a/x.xml", SiteGenerator(seed=1).catalog(3)
        )
        crawler.apply_plan({"http://a/x.xml": 1234.0})
        assert crawler.page("http://a/x.xml").refresh_interval == 1234.0
