from repro.diff import (
    DOC_UNCHANGED,
    DOC_UPDATED,
    XidSpace,
    classify_changes,
    compute_delta,
    document_status,
)
from repro.xmlstore import parse


def changed(old_source, new_source):
    old = parse(old_source)
    new = parse(new_source)
    space = XidSpace()
    space.assign_fresh(old.root)
    delta = compute_delta(old, new, space)
    return classify_changes(old, new, delta), delta


class TestNewElements:
    def test_inserted_subtree_elements_all_new(self):
        changes, _ = changed(
            "<catalog/>",
            "<catalog><Product><name>cam</name></Product></catalog>",
        )
        assert changes.tags("new") == {"Product", "name"}

    def test_insert_marks_parent_updated(self):
        changes, _ = changed("<catalog><x/></catalog>",
                             "<catalog><x/><Product/></catalog>")
        assert "catalog" in changes.tags("updated")
        assert "Product" in changes.tags("new")

    def test_new_elements_live_in_new_document(self):
        changes, _ = changed("<r/>", "<r><a>text</a></r>")
        (element,) = [e for e in changes.new_elements if e.tag == "a"]
        assert element.text_content() == "text"


class TestDeletedElements:
    def test_deleted_subtree_elements(self):
        changes, _ = changed(
            "<r><Product><name>x</name></Product></r>", "<r/>"
        )
        assert changes.tags("deleted") == {"Product", "name"}

    def test_deleted_elements_carry_old_content(self):
        changes, _ = changed("<r><a>gone</a></r>", "<r/>")
        (element,) = [e for e in changes.deleted_elements if e.tag == "a"]
        assert element.text_content() == "gone"


class TestUpdatedElements:
    def test_text_change_updates_ancestors(self):
        changes, _ = changed(
            "<catalog><Product><price>10</price></Product></catalog>",
            "<catalog><Product><price>12</price></Product></catalog>",
        )
        assert {"price", "Product", "catalog"} <= changes.tags("updated")

    def test_attribute_change_updates_element(self):
        changes, _ = changed('<r><a k="1"/></r>', '<r><a k="2"/></r>')
        assert "a" in changes.tags("updated")

    def test_unrelated_siblings_not_updated(self):
        changes, _ = changed(
            "<r><a><x>1</x></a><b><y>2</y></b></r>",
            "<r><a><x>1b</x></a><b><y>2</y></b></r>",
        )
        updated = changes.tags("updated")
        assert "b" not in updated and "y" not in updated

    def test_new_elements_not_double_counted_as_updated(self):
        changes, _ = changed("<r/>", "<r><a><b/></a></r>")
        assert "a" not in changes.tags("updated")
        assert "b" not in changes.tags("updated")

    def test_empty_delta_empty_changes(self):
        changes, delta = changed("<r><a/></r>", "<r><a/></r>")
        assert changes.is_empty()
        assert not delta


class TestDocumentStatus:
    def test_status_updated_when_delta_nonempty(self):
        _, delta = changed("<r><a/></r>", "<r><a/><b/></r>")
        assert document_status(delta) == DOC_UPDATED

    def test_status_unchanged_when_delta_empty(self):
        _, delta = changed("<r/>", "<r/>")
        assert document_status(delta) == DOC_UNCHANGED
