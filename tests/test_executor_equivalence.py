"""Property test: every batch executor is observationally equivalent.

Hypothesis generates random crawl streams — repeated URLs, changing and
unchanged content, malformed pages, HTML mixed with XML — and asserts that
the threaded and sharded executors produce exactly the serial executor's
notification multiset and counters, at every batch size.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import SimulatedClock
from repro.pipeline import (
    Fetch,
    HTML_PAGE,
    ProcessExecutor,
    SubscriptionSystem,
    ThreadedExecutor,
)

SOURCE = """
subscription Equiv
monitoring M
select <Hit url=URL/>
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when immediate
"""

WORDS = ("camera", "tripod", "lens cap", "camera bag")


@st.composite
def fetches(draw):
    site = draw(st.integers(min_value=0, max_value=3))
    shape = draw(
        st.sampled_from(("xml", "xml", "xml", "malformed", "html"))
    )
    if shape == "malformed":
        return Fetch(f"http://www.shop{site}.example/catalog.xml", "<r><boom>")
    if shape == "html":
        return Fetch(
            f"http://www.shop{site}.example/index.html",
            "<html>camera sale</html>",
            kind=HTML_PAGE,
        )
    word = draw(st.sampled_from(WORDS))
    version = draw(st.integers(min_value=0, max_value=2))
    return Fetch(
        f"http://www.shop{site}.example/catalog.xml",
        f"<catalog><Product>{word} v{version}</Product></catalog>",
    )


streams = st.lists(fetches(), min_size=0, max_size=24)
batch_sizes = st.integers(min_value=1, max_value=7)


def run(stream, batch_size, **kwargs):
    system = SubscriptionSystem(clock=SimulatedClock(1_000_000.0), **kwargs)
    system.subscribe(SOURCE, owner_email="u@x")
    results = system.run_stream(iter(stream), batch_size=batch_size)
    snapshot = system.metrics_snapshot()
    notifications = sorted(
        (n.complex_code, n.document_url, n.timestamp)
        for result in results
        for n in result.notifications
    )
    return {
        "notifications": notifications,
        "counters": snapshot["counters"],
        "documents_fed": snapshot["documents_fed"],
        "documents_rejected": snapshot["documents_rejected"],
        "rejections": snapshot["rejections"],
        "notifications_emitted": snapshot["notifications_emitted"],
    }


@settings(max_examples=25, deadline=None)
@given(stream=streams, batch_size=batch_sizes)
def test_threaded_matches_serial(stream, batch_size):
    serial = run(stream, batch_size, executor="serial")
    threaded = run(
        stream, batch_size, executor=ThreadedExecutor(max_workers=4)
    )
    assert threaded == serial


@settings(max_examples=25, deadline=None)
@given(stream=streams, batch_size=batch_sizes)
def test_sharded_matches_serial(stream, batch_size):
    serial = run(stream, batch_size, executor="serial", shards=3)
    sharded = run(stream, batch_size, executor="sharded", shards=3)
    assert sharded == serial


@pytest.fixture(scope="module")
def process_executor():
    # One pool for every example: ProcessExecutor keeps no per-system
    # state beyond the version-keyed detector blob cache, and (chain
    # serial, version) tokens never collide across systems.
    executor = ProcessExecutor(workers=3)
    yield executor
    executor.close()


@settings(max_examples=10, deadline=None)
@given(stream=streams, batch_size=batch_sizes)
def test_process_matches_serial(stream, batch_size, process_executor):
    serial = run(stream, batch_size, executor="serial")
    process = run(stream, batch_size, executor=process_executor)
    assert process == serial


def _faulted_crawl_stream():
    """A deterministic fetch list from a crawl under 10% injected faults."""
    from repro.clock import SECONDS_PER_DAY
    from repro.faults import CircuitBreaker, FaultInjector, FaultPlan
    from repro.webworld import ChangeModel, SimulatedCrawler, SiteGenerator

    clock = SimulatedClock(990_000_000.0)
    injector = FaultInjector(FaultPlan.transient_only(0.1, seed=5))
    generator = SiteGenerator(seed=5)
    crawler = SimulatedCrawler(
        clock=clock,
        change_model=ChangeModel(seed=6),
        seed=7,
        fault_injector=injector,
        breaker_factory=lambda: CircuitBreaker(failure_threshold=50),
    )
    for i in range(6):
        crawler.add_xml_page(
            f"http://www.shop{i}.example/catalog.xml",
            generator.catalog(products=4),
            change_probability=0.7,
        )
    fetches = []
    for _ in range(4):
        fetches.extend(crawler.due_fetches())
        clock.advance(SECONDS_PER_DAY)
    # Mix in pages the loader must reject so the error-slot path is
    # exercised alongside the fault-injected fetch sequence.
    fetches.insert(3, Fetch("http://www.shop0.example/bad.xml", "<r><boom>"))
    fetches.append(Fetch("http://www.shop1.example/bad.xml", "<nope"))
    return fetches


def test_executors_agree_under_injected_faults(process_executor):
    stream = _faulted_crawl_stream()
    assert len(stream) > 10
    serial = run(stream, 5, executor="serial")
    threaded = run(stream, 5, executor=ThreadedExecutor(max_workers=4))
    process = run(stream, 5, executor=process_executor)
    assert serial["documents_rejected"] == 2
    assert threaded == serial
    assert process == serial
