"""Property test: every batch executor is observationally equivalent.

Hypothesis generates random crawl streams — repeated URLs, changing and
unchanged content, malformed pages, HTML mixed with XML — and asserts that
the threaded and sharded executors produce exactly the serial executor's
notification multiset and counters, at every batch size.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import SimulatedClock
from repro.pipeline import (
    Fetch,
    HTML_PAGE,
    SubscriptionSystem,
    ThreadedExecutor,
)

SOURCE = """
subscription Equiv
monitoring M
select <Hit url=URL/>
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when immediate
"""

WORDS = ("camera", "tripod", "lens cap", "camera bag")


@st.composite
def fetches(draw):
    site = draw(st.integers(min_value=0, max_value=3))
    shape = draw(
        st.sampled_from(("xml", "xml", "xml", "malformed", "html"))
    )
    if shape == "malformed":
        return Fetch(f"http://www.shop{site}.example/catalog.xml", "<r><boom>")
    if shape == "html":
        return Fetch(
            f"http://www.shop{site}.example/index.html",
            "<html>camera sale</html>",
            kind=HTML_PAGE,
        )
    word = draw(st.sampled_from(WORDS))
    version = draw(st.integers(min_value=0, max_value=2))
    return Fetch(
        f"http://www.shop{site}.example/catalog.xml",
        f"<catalog><Product>{word} v{version}</Product></catalog>",
    )


streams = st.lists(fetches(), min_size=0, max_size=24)
batch_sizes = st.integers(min_value=1, max_value=7)


def run(stream, batch_size, **kwargs):
    system = SubscriptionSystem(clock=SimulatedClock(1_000_000.0), **kwargs)
    system.subscribe(SOURCE, owner_email="u@x")
    results = system.run_stream(iter(stream), batch_size=batch_size)
    snapshot = system.metrics_snapshot()
    notifications = sorted(
        (n.complex_code, n.document_url, n.timestamp)
        for result in results
        for n in result.notifications
    )
    return {
        "notifications": notifications,
        "counters": snapshot["counters"],
        "documents_fed": snapshot["documents_fed"],
        "documents_rejected": snapshot["documents_rejected"],
        "rejections": snapshot["rejections"],
        "notifications_emitted": snapshot["notifications_emitted"],
    }


@settings(max_examples=25, deadline=None)
@given(stream=streams, batch_size=batch_sizes)
def test_threaded_matches_serial(stream, batch_size):
    serial = run(stream, batch_size, executor="serial")
    threaded = run(
        stream, batch_size, executor=ThreadedExecutor(max_workers=4)
    )
    assert threaded == serial


@settings(max_examples=25, deadline=None)
@given(stream=streams, batch_size=batch_sizes)
def test_sharded_matches_serial(stream, batch_size):
    serial = run(stream, batch_size, executor="serial", shards=3)
    sharded = run(stream, batch_size, executor="sharded", shards=3)
    assert sharded == serial
