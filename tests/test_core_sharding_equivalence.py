"""Property: distribution is semantically invisible (Section 4.2).

For ANY random workload, the single :class:`MonitoringQueryProcessor`, the
flow-partitioned and the subscription-partitioned processors must produce
identical notification multisets AND identical facade stats — including the
registration counters, which used to be overcounted ``shard_count`` times
by the flow partitioner (every shard bumped ``complex_registered`` for the
same logical event).
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Alert,
    AtomicEventKey,
    FlowPartitionedProcessor,
    MonitoringQueryProcessor,
    SubscriptionPartitionedProcessor,
)

MAX_ATOMS = 8


@st.composite
def workloads(draw):
    """(complex-event specs, documents, removal indices).

    Specs are index sets into a shared pool of atomic keys; documents pair
    a URL with the atom subset its fetch raises; removals name registered
    events to unregister midway.
    """
    n_atoms = draw(st.integers(min_value=2, max_value=MAX_ATOMS))
    spec_strategy = st.lists(
        st.integers(min_value=0, max_value=n_atoms - 1),
        min_size=1,
        max_size=min(4, n_atoms),
        unique=True,
    )
    specs = draw(st.lists(spec_strategy, min_size=1, max_size=10))
    doc_strategy = st.lists(
        st.integers(min_value=0, max_value=n_atoms - 1),
        min_size=0,
        max_size=n_atoms,
        unique=True,
    )
    documents = draw(st.lists(doc_strategy, min_size=1, max_size=12))
    removals = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(specs) - 1),
            max_size=len(specs),
            unique=True,
        )
    )
    return n_atoms, specs, documents, removals


def atom_pool(n_atoms):
    return [AtomicEventKey("url_eq", f"http://atom{i}/") for i in range(n_atoms)]


def drive(processor, n_atoms, specs, documents, removals):
    """Register, feed, unregister, feed again; collect everything."""
    atoms = atom_pool(n_atoms)
    events = [
        processor.register([atoms[i] for i in spec]) for spec in specs
    ]
    notifications = Counter()

    def feed():
        for index, atom_indices in enumerate(documents):
            codes = sorted(
                processor.registry.intern_atomic(atoms[i])
                for i in atom_indices
            )
            url = f"http://doc{index}/"
            for notification in processor.process_alert(Alert(url, codes)):
                notifications[
                    (notification.complex_code, notification.document_url)
                ] += 1

    feed()
    for removal in removals:
        processor.unregister(events[removal].code)
    feed()
    stats = processor.stats() if callable(processor.stats) else processor.stats
    return notifications, stats.as_dict()


@pytest.mark.parametrize("shards", [1, 2, 7])
@settings(max_examples=40, deadline=None)
@given(workload=workloads())
def test_all_layouts_equivalent(shards, workload):
    n_atoms, specs, documents, removals = workload
    single = MonitoringQueryProcessor()
    flow = FlowPartitionedProcessor(shard_count=shards)
    partitioned = SubscriptionPartitionedProcessor(shard_count=shards)

    single_result = drive(single, *workload)
    flow_result = drive(flow, *workload)
    partitioned_result = drive(partitioned, *workload)

    # Identical notification multisets (codes are deterministic because
    # every processor interns the same keys in the same order).
    assert single_result[0] == flow_result[0] == partitioned_result[0]
    # Identical merged stats — registrations counted once per logical
    # event and alerts once per document, whatever the layout.
    assert single_result[1] == flow_result[1] == partitioned_result[1]


@pytest.mark.parametrize(
    "factory", [FlowPartitionedProcessor, SubscriptionPartitionedProcessor]
)
def test_registration_counted_once_regression(factory):
    """The overcounting bug: 7 shards used to report 7x registrations."""
    processor = factory(shard_count=7)
    atoms = atom_pool(3)
    event = processor.register(atoms)
    stats = processor.stats()
    assert stats.complex_registered == 1
    processor.unregister(event.code)
    assert processor.stats().complex_removed == 1
