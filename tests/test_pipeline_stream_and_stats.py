from repro.core.stats import ProcessorStats
from repro.pipeline import Fetch, HTML_PAGE, XML_PAGE, from_pairs


class TestFetch:
    def test_defaults_to_xml(self):
        fetch = Fetch(url="http://x/", content="<r/>")
        assert fetch.kind == XML_PAGE
        assert fetch.is_xml

    def test_html_kind(self):
        fetch = Fetch(url="http://x/", content="<html/>", kind=HTML_PAGE)
        assert not fetch.is_xml

    def test_from_pairs(self):
        fetches = list(
            from_pairs([("http://a/", "<r/>"), ("http://b/", "<s/>")])
        )
        assert [f.url for f in fetches] == ["http://a/", "http://b/"]
        assert all(f.is_xml for f in fetches)

    def test_from_pairs_html(self):
        fetches = list(from_pairs([("http://a/", "x")], kind=HTML_PAGE))
        assert fetches[0].kind == HTML_PAGE


class TestProcessorStats:
    def test_averages(self):
        stats = ProcessorStats(
            alerts_processed=4, events_seen=40, notifications_sent=2
        )
        assert stats.average_event_set_size == 10.0
        assert stats.average_notifications_per_alert == 0.5

    def test_zero_division_guards(self):
        stats = ProcessorStats()
        assert stats.average_event_set_size == 0.0
        assert stats.average_notifications_per_alert == 0.0

    def test_merge(self):
        a = ProcessorStats(alerts_processed=1, events_seen=10,
                           notifications_sent=2, complex_registered=3)
        b = ProcessorStats(alerts_processed=2, events_seen=5,
                           notifications_sent=1, complex_removed=4)
        merged = a.merged_with(b)
        assert merged.alerts_processed == 3
        assert merged.events_seen == 15
        assert merged.notifications_sent == 3
        assert merged.complex_registered == 3
        assert merged.complex_removed == 4

    def test_as_dict_keys(self):
        payload = ProcessorStats().as_dict()
        assert "average_event_set_size" in payload
        assert "notifications_sent" in payload
