"""The redesigned ingest API: spec grammar, bounded queue, facade, shims.

Pins the four public-surface promises of the executor/ingest redesign:

* one :class:`ExecutorSpec` grammar accepted by CLI, env and constructor,
  with documented precedence (flag/kwarg > spec field > env > default);
* ``run_stream`` routes through the bounded queue — ``executor.queue_depth``
  can genuinely saturate (peak <= bound, backpressure counted) while the
  rejection semantics of the old eager-chunking path stay bit-identical;
* ``repro.api`` is the stable facade and the old entry points warn;
* the asyncio fetch front-end drains a crawler concurrently into the
  same queue.
"""

from __future__ import annotations

import threading
import time
import warnings

import pytest

from repro.clock import SECONDS_PER_DAY, SimulatedClock
from repro.errors import PipelineError, XMLSyntaxError
from repro.pipeline import (
    BoundedFetchQueue,
    ExecutorSpec,
    Fetch,
    IngestSession,
    ProcessExecutor,
    SerialExecutor,
    ShardFanoutExecutor,
    SubscriptionSystem,
    ThreadedExecutor,
    from_pairs,
    make_executor,
)
from repro.pipeline import executor as executor_module
from repro.pipeline.executors import available, create, resolve

SOURCE = """
subscription Ingest
monitoring M
select <Hit url=URL/>
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when immediate
"""


def build_system(**kwargs):
    system = SubscriptionSystem(clock=SimulatedClock(1_000_000.0), **kwargs)
    system.subscribe(SOURCE, owner_email="u@x")
    return system


def xml_pages(count):
    return [
        (
            f"http://www.shop.example/{i}.xml",
            f"<catalog><Product>camera v{i}</Product></catalog>",
        )
        for i in range(count)
    ]


class TestExecutorSpec:
    def test_parse_name_only(self):
        spec = ExecutorSpec.parse("serial")
        assert spec == ExecutorSpec(name="serial")

    def test_parse_full(self):
        spec = ExecutorSpec.parse("process:workers=4,batch=64,queue=128")
        assert spec.name == "process"
        assert spec.workers == 4
        assert spec.batch == 64
        assert spec.queue == 128

    def test_aliases_and_whitespace(self):
        spec = ExecutorSpec.parse(" threaded : batch_size = 8 , queue_depth=16 ")
        assert spec == ExecutorSpec(name="threaded", batch=8, queue=16)

    def test_detect_option(self):
        assert ExecutorSpec.parse("process:detect=local").detect == "local"
        with pytest.raises(PipelineError):
            ExecutorSpec.parse("process:detect=sideways")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            ":workers=2",
            "process:workers",
            "process:workers=",
            "process:workers=zero",
            "process:workers=0",
            "process:wrokers=2",
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(PipelineError):
            ExecutorSpec.parse(bad)

    def test_render_round_trips(self):
        for text in ("serial", "process:workers=4,batch=64,queue=128"):
            assert ExecutorSpec.parse(text).render() == text

    def test_merged_overrides_win(self):
        spec = ExecutorSpec.parse("process:workers=4,batch=64")
        merged = spec.merged(workers=8, queue=256, batch=None)
        assert merged.workers == 8  # override wins
        assert merged.batch == 64  # None override leaves the spec field
        assert merged.queue == 256

    def test_create_builds_each_registered_executor(self):
        assert set(available()) >= {"serial", "threaded", "process", "sharded"}
        assert isinstance(create("serial"), SerialExecutor)
        assert isinstance(create("sharded"), ShardFanoutExecutor)
        threaded = create("threaded:workers=3")
        assert isinstance(threaded, ThreadedExecutor)
        process = create("process:workers=2")
        assert isinstance(process, ProcessExecutor)
        assert process.workers == 2
        process.close()

    def test_strict_options(self):
        with pytest.raises(PipelineError):
            create("serial:workers=2")
        with pytest.raises(PipelineError):
            create("threaded:detect=local")
        with pytest.raises(PipelineError):
            create("quantum")


class TestPrecedence:
    """flag/kwarg > spec field > $REPRO_EXECUTOR > default."""

    def test_spec_fields_configure_system(self):
        system = SubscriptionSystem(
            clock=SimulatedClock(0.0), executor="threaded:batch=16,queue=48"
        )
        assert isinstance(system.executor, ThreadedExecutor)
        assert system.batch_size == 16
        assert system.queue_bound == 48

    def test_kwargs_override_spec(self):
        system = SubscriptionSystem(
            clock=SimulatedClock(0.0),
            executor="serial:batch=16,queue=48",
            batch_size=8,
            queue_bound=24,
        )
        assert system.batch_size == 8
        assert system.queue_bound == 24

    def test_env_spec_used_when_no_spec_given(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "threaded:workers=2,batch=5")
        system = SubscriptionSystem(clock=SimulatedClock(0.0))
        assert isinstance(system.executor, ThreadedExecutor)
        assert system.batch_size == 5

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "threaded")
        system = SubscriptionSystem(clock=SimulatedClock(0.0), executor="serial")
        assert isinstance(system.executor, SerialExecutor)

    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        system = SubscriptionSystem(clock=SimulatedClock(0.0))
        assert isinstance(system.executor, SerialExecutor)
        assert system.batch_size == 32
        assert system.queue_bound == 64
        assert resolve(None) == ExecutorSpec(name="serial")

    def test_queue_bound_below_batch_size_rejected(self):
        with pytest.raises(PipelineError):
            SubscriptionSystem(
                clock=SimulatedClock(0.0), batch_size=32, queue_bound=8
            )


class TestBoundedFetchQueue:
    def test_put_blocks_at_bound_and_counts_waits(self):
        queue = BoundedFetchQueue(4)
        for i in range(4):
            queue.put(Fetch(f"http://x/{i}.xml", "<r/>"))
        blocked = threading.Event()

        def producer():
            blocked.set()
            queue.put(Fetch("http://x/overflow.xml", "<r/>"))

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        blocked.wait()
        time.sleep(0.05)
        assert len(queue) == 4  # the fifth put is parked
        assert queue.next_batch(2) is not None
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert queue.backpressure_waits == 1
        assert queue.peak_depth <= queue.bound

    def test_failure_after_full_batches(self):
        queue = BoundedFetchQueue(8)
        for i in range(5):
            queue.put(Fetch(f"http://x/{i}.xml", "<r/>"))
        queue.fail(XMLSyntaxError("stream died"))
        assert len(queue.next_batch(4)) == 4  # full batch still served
        with pytest.raises(XMLSyntaxError):
            queue.next_batch(4)  # partial tail discarded, error raised

    def test_close_yields_final_partial_then_none(self):
        queue = BoundedFetchQueue(8)
        for i in range(5):
            queue.put(Fetch(f"http://x/{i}.xml", "<r/>"))
        queue.close()
        assert len(queue.next_batch(4)) == 4
        assert len(queue.next_batch(4)) == 1
        assert queue.next_batch(4) is None

    def test_close_after_fail_is_a_no_op(self):
        """The feeder thread closes the queue in its normal epilogue; if
        the stream already failed, that close must not raise."""
        queue = BoundedFetchQueue(8)
        queue.put(Fetch("http://x/0.xml", "<r/>"))
        queue.fail(XMLSyntaxError("stream died"))
        queue.close()  # must not be a PipelineError
        with pytest.raises(XMLSyntaxError):
            queue.next_batch(4)


class TestRunStreamThroughQueue:
    def test_queue_depth_saturates_at_bound(self):
        system = build_system(batch_size=4, queue_bound=8)
        slow = iter(xml_pages(40))

        def stream():
            for url, content in slow:
                yield Fetch(url, content)

        results = system.run_stream(stream())
        assert len(results) == 40
        gauge = system.metrics_snapshot()["gauges"]["executor.queue_depth"]
        assert gauge == 0  # drained at the end
        # The ingest report is exposed via IngestSession; re-run through
        # one to read the peak.
        session = IngestSession(system, batch_size=4, queue_bound=8)
        session.run(from_pairs(xml_pages(40)))
        report = session.last_report
        assert report.documents == 40
        assert report.batches == 10
        assert 0 < report.peak_queue_depth <= 8

    def test_backpressure_fires_when_executor_is_slow(self):
        system = build_system(batch_size=2, queue_bound=2)
        original = system.feed_batch

        def slow_feed_batch(batch, skip_malformed=True):
            time.sleep(0.02)
            return original(batch, skip_malformed=skip_malformed)

        system.feed_batch = slow_feed_batch
        session = IngestSession(system, batch_size=2, queue_bound=2)
        session.run(from_pairs(xml_pages(12)))
        assert session.last_report.backpressure_waits > 0
        counters = system.metrics_snapshot()["counters"]
        assert counters["ingest.backpressure_waits"] >= 1

    def test_rejection_semantics_unchanged(self):
        """Regression: the bounded-queue path keeps the old contract."""
        pages = xml_pages(9)
        pages.insert(4, ("http://www.shop.example/bad.xml", "<r><boom>"))
        system = build_system(batch_size=3)
        results = system.run_stream(from_pairs(pages))
        assert len(results) == 9
        assert system.documents_rejected == 1
        snapshot = system.metrics_snapshot()
        assert snapshot["rejections"] == {"XMLSyntaxError": 1}

    def test_skip_malformed_false_raises_and_stops(self):
        pages = xml_pages(9)
        pages.insert(4, ("http://www.shop.example/bad.xml", "<r><boom>"))
        system = build_system(batch_size=3)
        with pytest.raises(XMLSyntaxError):
            system.run_stream(from_pairs(pages), skip_malformed=False)
        # Documents after the failing batch never entered the pipeline.
        assert system.documents_fed < len(pages)

    def test_feeder_thread_terminates_when_executor_raises(self):
        """A consumer-side failure cancels the queue so the feeder's
        blocked put unblocks — no orphaned producer thread survives."""
        system = build_system(batch_size=2, queue_bound=2)

        def exploding_feed_batch(batch, skip_malformed=True):
            raise RuntimeError("executor died")

        system.feed_batch = exploding_feed_batch
        session = IngestSession(system, batch_size=2, queue_bound=2)
        # 40 pages >> queue bound: the feeder is parked on a full put
        # at the moment the executor raises.
        with pytest.raises(RuntimeError, match="executor died"):
            session.run(from_pairs(xml_pages(40)))
        assert not any(
            thread.name == "repro-ingest-feeder" and thread.is_alive()
            for thread in threading.enumerate()
        )

    def test_crash_point_unwinds_the_feeder_thread(self):
        """A simulated process death (BaseException, not Exception) must
        also join the feeder before propagating."""
        from repro.faults import CrashPoint, clear, install

        system = build_system(batch_size=2, queue_bound=2)
        session = IngestSession(system, batch_size=2, queue_bound=2)
        install("post-fetch", at=1)
        try:
            with pytest.raises(CrashPoint):
                session.run(from_pairs(xml_pages(40)))
        finally:
            clear()
        assert not any(
            thread.name == "repro-ingest-feeder" and thread.is_alive()
            for thread in threading.enumerate()
        )

    def test_stream_failure_loses_only_partial_tail(self):
        """A stream that raises mid-iteration matches old chunked()."""

        def broken_stream():
            for url, content in xml_pages(7):
                yield Fetch(url, content)
            raise RuntimeError("crawler fell over")

        old = build_system(batch_size=3)
        with pytest.raises(RuntimeError):
            old.run_stream(broken_stream())
        # Two full batches (6 docs) processed; the partial 7th is lost.
        assert old.documents_fed == 6


class TestIngestSessionAndFrontend:
    def test_run_crawl_drains_concurrently(self):
        from repro.webworld import ChangeModel, SimulatedCrawler, SiteGenerator

        system = build_system(batch_size=4)
        generator = SiteGenerator(seed=3)
        crawler = SimulatedCrawler(
            clock=system.clock, change_model=ChangeModel(seed=4), seed=5
        )
        for i in range(10):
            crawler.add_xml_page(
                f"http://www.shop{i}.example/catalog.xml",
                generator.catalog(products=3),
            )
        with IngestSession(system) as session:
            results = session.run_crawl(crawler, concurrency=4)
        assert len(results) == 10
        counters = system.metrics_snapshot()["counters"]
        assert counters["frontend.fetches"] == 10

    def test_run_crawl_respects_refresh_schedule(self):
        from repro.webworld import SimulatedCrawler, SiteGenerator

        system = build_system()
        crawler = SimulatedCrawler(clock=system.clock, seed=5)
        crawler.add_xml_page(
            "http://www.shop.example/c.xml", SiteGenerator(seed=1).catalog(2)
        )
        session = IngestSession(system)
        assert len(session.run_crawl(crawler)) == 1
        assert session.run_crawl(crawler) == []  # nothing due yet
        system.clock.advance(SECONDS_PER_DAY)
        assert len(session.run_crawl(crawler)) == 1

    def test_session_defaults_come_from_system(self):
        system = build_system(batch_size=8, queue_bound=40)
        session = IngestSession(system)
        assert session.batch_size == 8
        assert session.queue_bound == 40

    def test_session_validates_bounds(self):
        system = build_system()
        with pytest.raises(PipelineError):
            IngestSession(system, batch_size=0)
        with pytest.raises(PipelineError):
            IngestSession(system, batch_size=8, queue_bound=4)


class TestDeprecationShim:
    def test_make_executor_warns_exactly_once(self):
        executor_module._MAKE_EXECUTOR_WARNED = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = make_executor("serial")
            second = make_executor("threaded")
        assert isinstance(first, SerialExecutor)
        assert isinstance(second, ThreadedExecutor)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.pipeline.executors.create" in str(
            deprecations[0].message
        )

    def test_shim_accepts_full_specs(self):
        executor_module._MAKE_EXECUTOR_WARNED = True  # keep output quiet
        threaded = make_executor("threaded:workers=2")
        assert isinstance(threaded, ThreadedExecutor)


class TestApiFacade:
    def test_one_stop_import(self):
        from repro import api

        system = api.SubscriptionSystem(
            clock=SimulatedClock(0.0), executor="serial"
        )
        assert isinstance(system, SubscriptionSystem)
        assert api.create_executor("serial").name == "serial"
        assert "process" in api.available_executors()
        assert api.ExecutorSpec.parse("process:workers=2").workers == 2

    def test_facade_covers_the_redesign(self):
        from repro import api

        for name in (
            "IngestSession",
            "AsyncFetchFrontend",
            "BoundedFetchQueue",
            "ExecutorSpec",
            "ProcessExecutor",
            "register_executor",
        ):
            assert name in api.__all__
            assert hasattr(api, name)

    def test_register_round_trip(self):
        from repro.pipeline import executors

        class EchoExecutor(SerialExecutor):
            name = "echo"

        executors.register("echo", lambda spec: EchoExecutor())
        try:
            assert "echo" in executors.available()
            assert isinstance(executors.create("echo"), EchoExecutor)
        finally:
            executors._FACTORIES.pop("echo", None)
