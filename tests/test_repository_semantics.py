from repro.repository import SemanticClassifier
from repro.xmlstore import parse


class TestTagRules:
    def test_matching_rule_classifies(self):
        classifier = SemanticClassifier()
        classifier.add_rule("culture", ["museum", "painting"])
        doc = parse("<museum><painting/></museum>")
        assert classifier.classify(doc) == "culture"

    def test_threshold_respected(self):
        classifier = SemanticClassifier()
        classifier.add_rule("culture", ["museum", "painting"], threshold=2)
        assert classifier.classify(parse("<museum/>")) is None
        assert classifier.classify(parse("<museum><painting/></museum>")) == (
            "culture"
        )

    def test_best_scoring_rule_wins(self):
        classifier = SemanticClassifier()
        classifier.add_rule("a", ["x", "y"])
        classifier.add_rule("b", ["x", "y", "z"])
        doc = parse("<x><y/><z/></x>")
        assert classifier.classify(doc) == "b"

    def test_no_rules_returns_none(self):
        assert SemanticClassifier().classify(parse("<a/>")) is None


class TestDTDAssignments:
    def test_dtd_assignment_takes_priority(self):
        classifier = SemanticClassifier()
        classifier.add_rule("culture", ["museum"])
        classifier.assign_dtd("http://d/m.dtd", "special")
        doc = parse('<!DOCTYPE museum SYSTEM "http://d/m.dtd"><museum/>')
        assert classifier.classify(doc) == "special"

    def test_unassigned_dtd_falls_back_to_rules(self):
        classifier = SemanticClassifier()
        classifier.add_rule("culture", ["museum"])
        doc = parse('<!DOCTYPE museum SYSTEM "http://d/other.dtd"><museum/>')
        assert classifier.classify(doc) == "culture"

    def test_domains_listing(self):
        classifier = SemanticClassifier()
        classifier.add_rule("b", ["x"])
        classifier.add_rule("a", ["y"])
        assert list(classifier.domains()) == ["a", "b"]
