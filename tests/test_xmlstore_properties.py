"""Property-based tests for the XML substrate (hypothesis)."""

import string

from hypothesis import given, settings, strategies as st

from repro.xmlstore import parse, serialize
from repro.xmlstore.nodes import Document, ElementNode, TextNode

tag_names = st.text(
    alphabet=string.ascii_lowercase, min_size=1, max_size=8
)
text_data = st.text(
    alphabet=string.printable.replace("\x0b", "").replace("\x0c", ""),
    min_size=1,
    max_size=40,
).filter(lambda s: s.strip())
attr_values = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'",
    max_size=20,
)


@st.composite
def element_trees(draw, depth=3):
    tag = draw(tag_names)
    attributes = draw(
        st.dictionaries(tag_names, attr_values, max_size=3)
    )
    element = ElementNode(tag, attributes)
    if depth > 0:
        children = draw(
            st.lists(
                st.one_of(
                    text_data.map(TextNode),
                    element_trees(depth=depth - 1),
                ),
                max_size=4,
            )
        )
        for child in children:
            element.append(child)
    return element


@settings(max_examples=80, deadline=None)
@given(element_trees())
def test_serialize_parse_roundtrip(root):
    """parse(serialize(tree)) reproduces the tree, modulo whitespace-only
    text nodes (which the parser drops by default)."""
    source = serialize(Document(root))
    reparsed = parse(source)
    assert serialize(reparsed) == source


@settings(max_examples=80, deadline=None)
@given(element_trees())
def test_postorder_parent_after_children(root):
    seen = set()
    for node in root.postorder():
        if isinstance(node, ElementNode):
            for child in node.children:
                assert id(child) in seen
        seen.add(id(node))


@settings(max_examples=80, deadline=None)
@given(element_trees())
def test_preorder_and_postorder_visit_same_nodes(root):
    assert {id(n) for n in root.preorder()} == {
        id(n) for n in root.postorder()
    }


@settings(max_examples=50, deadline=None)
@given(element_trees())
def test_levels_consistent_with_parent(root):
    for node in root.preorder():
        if node.parent is not None:
            assert node.level == node.parent.level + 1
