"""Failure injection: the system must survive hostile inputs."""

import pytest

from repro.errors import XMLSyntaxError
from repro.pipeline import Fetch


class TestMalformedPages:
    def test_feed_xml_raises_on_malformed(self, system):
        with pytest.raises(XMLSyntaxError):
            system.feed_xml("http://bad.example/p.xml", "<r><unclosed>")

    def test_run_stream_skips_malformed_by_default(self, system):
        system.subscribe(
            """
            subscription S
            monitoring M
            select <Hit url=URL/>
            where URL extends "http://watched.example/"
            report when immediate
            """,
            owner_email="u@x",
        )
        results = system.run_stream(
            [
                Fetch("http://watched.example/good.xml", "<r/>"),
                Fetch("http://watched.example/bad.xml", "<r><boom>"),
                Fetch("http://watched.example/also-good.xml", "<ok/>"),
            ]
        )
        assert len(results) == 2
        assert system.documents_rejected == 1
        assert system.documents_fed == 2

    def test_run_stream_strict_mode(self, system):
        with pytest.raises(XMLSyntaxError):
            system.run_stream(
                [Fetch("http://x/bad.xml", "<r><boom>")],
                skip_malformed=False,
            )

    def test_malformed_refetch_keeps_old_version(self, system, clock):
        system.feed_xml("http://x/a.xml", "<r><keep/></r>")
        clock.advance(60)
        system.run_stream([Fetch("http://x/a.xml", "<r><bad")])
        document = system.repository.document_for_url("http://x/a.xml")
        assert document.root.first("keep") is not None


class TestHostileContent:
    def test_deeply_nested_document(self, system):
        depth = 200
        source = "".join(f"<n{i}>" for i in range(depth))
        source += "x"
        source += "".join(f"</n{i}>" for i in reversed(range(depth)))
        result = system.feed_xml("http://deep.example/p.xml", source)
        assert result.outcome.status == "new"

    def test_huge_flat_document(self, system):
        source = "<r>" + "<item>x</item>" * 5_000 + "</r>"
        result = system.feed_xml("http://wide.example/p.xml", source)
        assert result.outcome.meta.version == 1

    def test_unicode_content(self, system):
        system.subscribe(
            """
            subscription U
            monitoring M
            select <Hit url=URL/>
            where URL extends "http://intl.example/"
              and self contains "données"
            report when immediate
            """,
            owner_email="u@x",
        )
        result = system.feed_xml(
            "http://intl.example/p.xml",
            "<r>des données célèbres — 数据</r>",
        )
        assert len(result.notifications) == 1

    def test_entity_heavy_document(self, system):
        result = system.feed_xml(
            "http://ent.example/p.xml",
            "<r>" + "&amp;&lt;&gt;" * 1000 + "</r>",
        )
        assert result.outcome.status == "new"

    def test_same_url_alternating_content_types_rejected(self, system):
        system.feed_html("http://mixed.example/p", "<html>x</html>")
        from repro.errors import RepositoryError

        with pytest.raises(RepositoryError):
            system.feed_xml("http://mixed.example/p", "<r/>")
