import pytest

from repro.clock import SECONDS_PER_DAY, SECONDS_PER_WEEK, SimulatedClock
from repro.errors import ReportingError
from repro.language.ast import (
    CountCondition,
    ImmediateCondition,
    PeriodicCondition,
    ReportCondition,
)
from repro.reporting import EmailSink, Reporter, ReportRegistration, WebPublisher
from repro.xmlstore.nodes import ElementNode


def notification(text="n"):
    element = ElementNode("Notification", {"data": text})
    return element


def immediate_registration(sub_id=1, **kwargs):
    kwargs.setdefault("recipients", ("user@example.org",))
    return ReportRegistration(
        subscription_id=sub_id,
        when=ReportCondition(terms=(ImmediateCondition(),)),
        **kwargs,
    )


@pytest.fixture
def clock():
    return SimulatedClock(1_000_000.0)


@pytest.fixture
def reporter(clock):
    return Reporter(clock=clock)


class TestLifecycle:
    def test_register_and_deliver(self, reporter):
        reporter.register(immediate_registration())
        reporter.deliver(1, "Q", [notification()])
        assert reporter.stats.reports_generated == 1

    def test_duplicate_registration_rejected(self, reporter):
        reporter.register(immediate_registration())
        with pytest.raises(ReportingError):
            reporter.register(immediate_registration())

    def test_deliver_to_unknown_subscription_rejected(self, reporter):
        with pytest.raises(ReportingError):
            reporter.deliver(9, "Q", [notification()])

    def test_unregister(self, reporter):
        reporter.register(immediate_registration())
        reporter.unregister(1)
        assert not reporter.registered(1)


class TestCountConditions:
    def test_buffer_until_threshold(self, reporter):
        reporter.register(
            ReportRegistration(
                subscription_id=1,
                when=ReportCondition(terms=(CountCondition(threshold=3),)),
                recipients=("u@x",),
            )
        )
        reporter.deliver(1, "Q", [notification("a")])
        reporter.deliver(1, "Q", [notification("b")])
        assert reporter.stats.reports_generated == 0
        assert reporter.pending_count(1) == 2
        reporter.deliver(1, "Q", [notification("c")])
        assert reporter.stats.reports_generated == 1
        assert reporter.pending_count(1) == 0

    def test_report_empties_buffer_for_next_round(self, reporter):
        reporter.register(
            ReportRegistration(
                subscription_id=1,
                when=ReportCondition(terms=(CountCondition(threshold=2),)),
            )
        )
        for _ in range(5):
            reporter.deliver(1, "Q", [notification()])
        assert reporter.stats.reports_generated == 2
        assert reporter.pending_count(1) == 1

    def test_named_count(self, reporter):
        reporter.register(
            ReportRegistration(
                subscription_id=1,
                when=ReportCondition(
                    terms=(
                        CountCondition(threshold=2, query_name="UpdatedPage"),
                    )
                ),
            )
        )
        reporter.deliver(1, "Other", [notification()] * 5)
        assert reporter.stats.reports_generated == 0
        reporter.deliver(1, "UpdatedPage", [notification()] * 2)
        assert reporter.stats.reports_generated == 1


class TestPeriodicConditions:
    def test_tick_generates_periodic_report(self, reporter, clock):
        reporter.register(
            ReportRegistration(
                subscription_id=1,
                when=ReportCondition(
                    terms=(PeriodicCondition(frequency="daily"),)
                ),
            )
        )
        reporter.deliver(1, "Q", [notification()])
        assert reporter.tick() == 0
        clock.advance(SECONDS_PER_DAY)
        assert reporter.tick() == 1

    def test_no_report_without_notifications(self, reporter, clock):
        reporter.register(
            ReportRegistration(
                subscription_id=1,
                when=ReportCondition(
                    terms=(PeriodicCondition(frequency="daily"),)
                ),
            )
        )
        clock.advance(2 * SECONDS_PER_DAY)
        assert reporter.tick() == 0


class TestAtmost:
    def test_atmost_count_suppresses_overflow(self, reporter):
        reporter.register(
            ReportRegistration(
                subscription_id=1,
                when=ReportCondition(terms=(CountCondition(threshold=100),)),
                atmost_count=3,
            )
        )
        reporter.deliver(1, "Q", [notification(str(i)) for i in range(10)])
        assert reporter.pending_count(1) == 3
        assert reporter.stats.notifications_suppressed == 7

    def test_atmost_frequency_rate_limits(self, reporter, clock):
        reporter.register(
            ReportRegistration(
                subscription_id=1,
                when=ReportCondition(terms=(ImmediateCondition(),)),
                atmost_frequency="weekly",
            )
        )
        reporter.deliver(1, "Q", [notification("first")])
        assert reporter.stats.reports_generated == 1
        reporter.deliver(1, "Q", [notification("second")])
        # The when clause triggered but the rate limit held it back.
        assert reporter.stats.reports_generated == 1
        clock.advance(SECONDS_PER_WEEK)
        reporter.tick()
        assert reporter.stats.reports_generated == 2


class TestDelivery:
    def test_emails_sent_to_recipients(self, clock):
        sink = EmailSink(clock=clock)
        reporter = Reporter(clock=clock, email_sink=sink)
        reporter.register(
            immediate_registration(recipients=("a@x", "b@x"))
        )
        reporter.deliver(1, "Q", [notification()])
        assert sink.total_sent == 2
        assert {email.recipient for email in sink.sent} == {"a@x", "b@x"}

    def test_report_published_to_web(self, clock):
        publisher = WebPublisher()
        reporter = Reporter(clock=clock, publisher=publisher)
        reporter.register(immediate_registration())
        reporter.deliver(1, "Q", [notification("payload")])
        body = publisher.fetch(1)
        assert body.startswith("<Report>")
        assert 'data="payload"' in body

    def test_report_query_applied(self, clock):
        def runner(query_text, document):
            # A fake "Xyleme Reporter" post-processor: wrap and tag.
            from repro.xmlstore.nodes import Document

            root = ElementNode("Processed", {"query": query_text})
            return Document(root)

        reporter = Reporter(clock=clock, report_query_runner=runner)
        reporter.register(
            immediate_registration(report_query="select x from r/x x")
        )
        reporter.deliver(1, "Q", [notification()])
        body = reporter.publisher.fetch(1)
        assert body.startswith("<Processed")

    def test_archive_clause(self, clock):
        reporter = Reporter(clock=clock)
        reporter.register(
            immediate_registration(archive_frequency="monthly")
        )
        reporter.deliver(1, "Q", [notification()])
        assert len(reporter.archive.reports_for(1)) == 1

    def test_force_report(self, reporter):
        reporter.register(
            ReportRegistration(
                subscription_id=1,
                when=ReportCondition(terms=(CountCondition(threshold=99),)),
            )
        )
        reporter.deliver(1, "Q", [notification()])
        assert reporter.force_report(1)
        assert reporter.pending_count(1) == 0
        assert not reporter.force_report(1)  # nothing left
