"""The process-pool executor: payload pickling, fallback, detector cache.

The tentpole contract has three legs, each pinned here:

* every payload type that crosses the process boundary survives a pickle
  round-trip (the tentpole's transport invariant);
* a dying / raising pool degrades to the serial path, counts one
  ``executor.fallbacks{executor=process}`` per affected sweep, and still
  produces the serial executor's results;
* workers never reuse stale detection tables: the detector snapshot is
  keyed by chain version, so a mid-stream subscribe invalidates it.
"""

from __future__ import annotations

import pickle

import pytest

from repro.alerters import DetectorState, FetchedDocument
from repro.clock import SimulatedClock
from repro.errors import PipelineError, ReproError, XMLSyntaxError
from repro.pipeline import (
    Fetch,
    HTML_PAGE,
    ProcessExecutor,
    SubscriptionSystem,
    from_pairs,
)
from repro.pipeline.workers import (
    DetectRequest,
    DetectResponse,
    ParseRequest,
    ParseResponse,
    detect_slice,
    parse_slice,
    portable_error,
)
from repro.xmlstore import parse, serialize

SOURCE = """
subscription ProcPool
monitoring M
select <Hit url=URL/>
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
report when immediate
"""


def build_system(executor="serial", **kwargs):
    system = SubscriptionSystem(
        clock=SimulatedClock(1_000_000.0), executor=executor, **kwargs
    )
    system.subscribe(SOURCE, owner_email="u@x")
    return system


def sample_pages(count=12):
    pages = []
    for i in range(count):
        if i % 5 == 3:
            pages.append((f"http://www.shop{i % 2}.example/{i}.xml", "<r><boom>"))
        else:
            pages.append(
                (
                    f"http://www.shop{i % 2}.example/{i}.xml",
                    f"<catalog><Product>camera v{i}</Product></catalog>",
                )
            )
    return pages


def summarize(system, results):
    snapshot = system.metrics_snapshot()
    notifications = sorted(
        (n.complex_code, n.document_url, n.timestamp)
        for result in results
        for n in result.notifications
    )
    return {
        "notifications": notifications,
        "documents_fed": snapshot["documents_fed"],
        "documents_rejected": snapshot["documents_rejected"],
        "rejections": snapshot["rejections"],
        "notifications_emitted": snapshot["notifications_emitted"],
    }


def roundtrip(value):
    return pickle.loads(pickle.dumps(value, pickle.HIGHEST_PROTOCOL))


class TestPayloadPickling:
    """Every stage-task payload type survives the process boundary."""

    def test_parse_request_response(self):
        request = ParseRequest(3, "http://a/x.xml", "<r><p>hi</p></r>")
        assert roundtrip(request) == request
        (response,) = parse_slice([request])
        back = roundtrip(response)
        assert back.index == 3 and back.error is None
        assert serialize(back.document) == serialize(response.document)

    def test_parse_response_carries_picklable_error(self):
        (response,) = parse_slice([ParseRequest(0, "http://a/x", "<r><boom>")])
        back = roundtrip(response)
        assert back.document is None
        assert isinstance(back.error, XMLSyntaxError)

    def test_fetch_and_fetched_document(self):
        fetch = Fetch("http://a/x.html", "<html>hi</html>", kind=HTML_PAGE)
        assert roundtrip(fetch) == fetch
        system = build_system()
        url = "http://www.shop.example/c.xml"
        system.feed_xml(url, "<catalog><Product>camera</Product></catalog>")
        fetched = FetchedDocument(
            url=url,
            meta=system.repository.meta_for_url(url),
            status="new",
            document=parse("<catalog><Product>camera</Product></catalog>"),
        )
        back = roundtrip(fetched)
        assert back.url == fetched.url
        assert back.meta == fetched.meta
        assert serialize(back.document) == serialize(fetched.document)

    def test_detector_state_and_detect_payloads(self):
        system = build_system()
        state = system.alerter_chain.detector_state()
        assert isinstance(state, DetectorState)
        back = roundtrip(state)
        assert back.token == state.token
        assert len(back.alerters) == len(state.alerters)

        url = "http://www.shop.example/c.xml"
        document = parse("<catalog><Product>camera</Product></catalog>")
        system.feed_xml(url, serialize(document))
        fetched = FetchedDocument(
            url=url,
            meta=system.repository.meta_for_url(url),
            status="new",
            document=document,
        )
        request = DetectRequest(1, fetched)
        blob = pickle.dumps(state, pickle.HIGHEST_PROTOCOL)
        (response,) = detect_slice(state.token, blob, [roundtrip(request)])
        assert response.error is None
        codes, payloads = roundtrip(response).detection
        direct_codes, _ = state.detect_events(fetched)
        assert codes == direct_codes

    def test_detect_response_error_slot(self):
        response = DetectResponse(2, error=PipelineError("boom"))
        back = roundtrip(response)
        assert isinstance(back.error, PipelineError)
        assert back.detection is None

    def test_portable_error_passthrough_and_fallbacks(self):
        keep = XMLSyntaxError("bad markup")
        assert portable_error(keep) is keep

        class Unpicklable(ReproError):
            def __init__(self):
                super().__init__("nope")
                self.handle = lambda: None  # lambdas never pickle

        class UnpicklableProgrammingError(Exception):
            def __init__(self):
                super().__init__("nope")
                self.handle = lambda: None

        substitute = portable_error(Unpicklable())
        assert isinstance(substitute, ReproError)  # stays a rejection
        assert "Unpicklable" in str(substitute)
        hard = portable_error(UnpicklableProgrammingError())
        assert not isinstance(hard, ReproError)  # stays fatal
        assert isinstance(hard, RuntimeError)


@pytest.fixture(scope="module")
def pool():
    executor = ProcessExecutor(workers=3)
    yield executor
    executor.close()


class TestProcessExecutor:
    def test_matches_serial(self, pool):
        serial = build_system("serial")
        expected = summarize(serial, serial.run_stream(from_pairs(sample_pages())))
        system = build_system(pool)
        actual = summarize(system, system.run_stream(from_pairs(sample_pages())))
        assert actual == expected

    def test_workers_one_uses_no_pool(self):
        executor = ProcessExecutor(workers=1)
        system = build_system(executor)
        system.feed_batch(from_pairs(sample_pages(6)))
        assert executor._pool is None
        executor.close()

    def test_detect_locally_matches(self, pool):
        serial = build_system("serial")
        expected = summarize(serial, serial.run_stream(from_pairs(sample_pages())))
        local = ProcessExecutor(workers=3, detect_locally=True)
        system = build_system(local)
        actual = summarize(system, system.run_stream(from_pairs(sample_pages())))
        local.close()
        assert actual == expected

    def test_broken_pool_falls_back_to_serial(self):
        serial = build_system("serial")
        expected = summarize(
            serial, serial.feed_batch(from_pairs(sample_pages()))
        )

        executor = ProcessExecutor(workers=3)

        def explode(*args, **kwargs):
            raise RuntimeError("pool died mid-sweep")

        executor._process_sweep = explode
        system = build_system(executor)
        actual = summarize(system, system.feed_batch(from_pairs(sample_pages())))
        assert actual == expected
        fallbacks = system.metrics_snapshot()["counters"][
            "executor.fallbacks{executor=process}"
        ]
        assert fallbacks == 2  # one per degraded sweep: parse, then detect
        executor.close()

    def test_broken_executor_discards_pool(self):
        from concurrent.futures.process import BrokenProcessPool

        executor = ProcessExecutor(workers=3)
        executor._ensure_pool()
        assert executor._pool is not None
        system = build_system(executor)
        executor._degrade(system, BrokenProcessPool("worker died"))
        assert executor._pool is None
        executor.close()

    def test_mid_stream_subscribe_invalidates_detector_blob(self, pool):
        system = build_system(pool)
        pages = sample_pages(8)
        system.feed_batch(from_pairs(pages))
        first_token = pool._blob_token
        system.subscribe(
            SOURCE.replace("ProcPool", "Second").replace("camera", "tripod"),
            owner_email="u@x",
        )
        changed = [
            (url, content.replace("camera", "tripod camera"))
            for url, content in pages
        ]
        system.feed_batch(from_pairs(changed))
        assert pool._blob_token != first_token
        assert pool._blob_token[1] > first_token[1]  # version advanced
