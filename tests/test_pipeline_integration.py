"""End-to-end tests of the assembled subscription system (Figure 3)."""

import pytest

from repro.clock import SECONDS_PER_DAY, SECONDS_PER_WEEK
from repro.errors import ResourceLimitError
from repro.pipeline import Fetch, SubscriptionSystem

MEMBERS_V1 = (
    "<members><Member><name>jouglet</name><fn>jeremie</fn></Member></members>"
)
MEMBERS_V2 = (
    "<members><Member><name>jouglet</name><fn>jeremie</fn></Member>"
    "<Member><name>nguyen</name><fn>benjamin</fn></Member>"
    "<Member><name>preda</name><fn>mihai</fn></Member></members>"
)

MY_XYLEME = """
subscription MyXyleme
monitoring UpdatedPage
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/"
  and modified self
monitoring NewMember
select X
from self//Member X
where URL = "http://inria.fr/Xy/members.xml"
  and new X
report when notifications.count >= 3
"""


class TestMyXylemeScenario:
    """The paper's running example (Section 2.2)."""

    def test_full_flow(self, system, clock):
        sub_id = system.subscribe(MY_XYLEME, owner_email="ben@inria.fr")
        first = system.feed_xml("http://inria.fr/Xy/members.xml", MEMBERS_V1)
        # New document: NewMember fires (first Member), UpdatedPage does not
        # (the page is new, not modified).
        assert len(first.notifications) == 1

        clock.advance(3600)
        second = system.feed_xml("http://inria.fr/Xy/members.xml", MEMBERS_V2)
        # Updated page inside the prefix + two new Members.
        codes = {n.complex_code for n in second.notifications}
        assert len(codes) == 2

        assert system.reporter.stats.reports_generated >= 1
        assert system.email_sink.total_sent >= 1
        body = system.email_sink.sent[-1].body
        assert "<Member>" in body or "UpdatedPage" in body

    def test_unchanged_refetch_yields_no_notification(self, system, clock):
        system.subscribe(MY_XYLEME, owner_email="ben@inria.fr")
        system.feed_xml("http://inria.fr/Xy/members.xml", MEMBERS_V1)
        clock.advance(60)
        result = system.feed_xml(
            "http://inria.fr/Xy/members.xml", MEMBERS_V1
        )
        # URL conditions are strong, so an alert is still sent (Section
        # 5.1), but no complex event completes: no notification.
        assert result.alert is not None
        assert result.notifications == []

    def test_documents_outside_prefix_ignored(self, system):
        system.subscribe(MY_XYLEME, owner_email="ben@inria.fr")
        result = system.feed_xml("http://other.org/page.xml", "<r/>")
        assert result.alert is None


class TestElementLevelMonitoring:
    CAMERAS = """
    subscription Cameras
    monitoring UpdatedCam
    select X
    from self//Product X
    where DTD = "http://dtd.example.org/catalog.dtd"
      and updated Product contains "camera"
    report when immediate
    """

    CATALOG_V1 = (
        '<!DOCTYPE catalog SYSTEM "http://dtd.example.org/catalog.dtd">'
        "<catalog><Product><name>super camera</name><price>10</price>"
        "</Product><Product><name>piano</name><price>99</price></Product>"
        "</catalog>"
    )
    CATALOG_V2 = CATALOG_V1.replace("<price>10</price>", "<price>12</price>")
    CATALOG_V3 = CATALOG_V2.replace("<price>99</price>", "<price>89</price>")

    def test_updated_product_with_word(self, system, clock):
        system.subscribe(self.CAMERAS, owner_email="u@x")
        system.feed_xml("http://shop/catalog.xml", self.CATALOG_V1)
        clock.advance(60)
        result = system.feed_xml("http://shop/catalog.xml", self.CATALOG_V2)
        assert len(result.notifications) == 1
        body = system.email_sink.sent[-1].body
        assert "camera" in body and "12" in body

    def test_update_to_other_product_ignored(self, system, clock):
        system.subscribe(self.CAMERAS, owner_email="u@x")
        system.feed_xml("http://shop/catalog.xml", self.CATALOG_V2)
        clock.advance(60)
        result = system.feed_xml("http://shop/catalog.xml", self.CATALOG_V3)
        # The piano product updated; no camera product did.
        assert result.notifications == []


class TestContinuousQueries:
    AMSTERDAM = """
    subscription Amsterdam
    continuous delta AmsterdamPaintings
    select p/title from culture/museum m, m/painting p
    where m/address contains "Amsterdam"
    try biweekly
    report when immediate
    """

    MUSEUM_V1 = (
        "<museum><name>Rijks</name><address>Amsterdam</address>"
        "<painting><title>Night Watch</title></painting></museum>"
    )
    MUSEUM_V2 = MUSEUM_V1.replace(
        "</museum>",
        "<painting><title>Milkmaid</title></painting></museum>",
    )

    def test_first_evaluation_full_then_delta(self, system, clock):
        system.feed_xml("http://rijks.nl/c.xml", self.MUSEUM_V1)
        sub_id = system.subscribe(self.AMSTERDAM, owner_email="u@x")
        system.advance_days(3.5)
        assert system.trigger_engine.stats.evaluations == 1
        first_report = system.publisher.fetch(sub_id)
        assert "Night Watch" in first_report

        system.feed_xml("http://rijks.nl/c.xml", self.MUSEUM_V2)
        system.advance_days(3.5)
        latest = system.publisher.fetch(sub_id)
        assert "AmsterdamPaintings-delta" in latest
        assert "Milkmaid" in latest

    def test_notification_triggered_continuous(self, system, clock):
        system.feed_xml("http://rijks.nl/c.xml", self.MUSEUM_V1)
        source = """
        subscription XylemeCompetitors
        monitoring ChangeInMyProducts
        select <ChangeInMyProducts/>
        where URL = "http://www.xyleme.com/products.xml"
          and modified self
        continuous MyCompetitors
        select p/title from culture/museum m, m/painting p
        where m/address contains "Amsterdam"
        when XylemeCompetitors.ChangeInMyProducts
        report when immediate
        """
        sub_id = system.subscribe(source, owner_email="u@x")
        system.feed_xml("http://www.xyleme.com/products.xml", "<p>v1</p>")
        assert system.trigger_engine.stats.evaluations == 0
        clock.advance(60)
        system.feed_xml("http://www.xyleme.com/products.xml", "<p>v2</p>")
        assert system.trigger_engine.stats.evaluations == 1
        assert "Night Watch" in system.publisher.fetch(sub_id)


class TestReportConditionsEndToEnd:
    def test_periodic_report(self, system, clock):
        source = """
        subscription Weekly
        monitoring M
        select <Hit url=URL/>
        where URL extends "http://watched.example/"
        report when weekly
        """
        sub_id = system.subscribe(source, owner_email="u@x")
        system.feed_xml("http://watched.example/a.xml", "<r/>")
        assert system.reporter.stats.reports_generated == 0
        system.advance_days(7)
        assert system.reporter.stats.reports_generated == 1

    def test_atmost_weekly_rate_limit(self, system, clock):
        source = """
        subscription Limited
        monitoring M
        select <Hit url=URL/>
        where URL extends "http://watched.example/"
        report when immediate atmost weekly
        """
        system.subscribe(source, owner_email="u@x")
        system.feed_xml("http://watched.example/a.xml", "<r>1</r>")
        clock.advance(60)
        system.feed_xml("http://watched.example/b.xml", "<r>2</r>")
        assert system.reporter.stats.reports_generated == 1
        system.advance_days(7)
        assert system.reporter.stats.reports_generated == 2

    def test_report_query_postprocessing(self, system):
        source = """
        subscription Urls
        monitoring M
        select <Hit url=URL/>
        where URL extends "http://watched.example/"
        report
        select h@url from Report/Hit h
        when count >= 2
        """
        sub_id = system.subscribe(source, owner_email="u@x")
        system.feed_xml("http://watched.example/a.xml", "<r/>")
        system.feed_xml("http://watched.example/b.xml", "<r/>")
        body = system.publisher.fetch(sub_id)
        assert "http://watched.example/a.xml" in body
        assert "<Hit" not in body  # query projected attributes out


class TestHTMLMonitoring:
    def test_html_keyword_and_change(self, system, clock):
        source = """
        subscription News
        monitoring M
        select <Hit url=URL/>
        where URL extends "http://news.example/"
          and self contains "xyleme"
        report when immediate
        """
        system.subscribe(source, owner_email="u@x")
        hit = system.feed_html(
            "http://news.example/today.html",
            "<html><body>xyleme raises funding</body></html>",
        )
        assert len(hit.notifications) == 1
        miss = system.feed_html(
            "http://news.example/other.html",
            "<html><body>nothing relevant</body></html>",
        )
        assert miss.notifications == []


class TestSystemAdministration:
    def test_unsubscribe(self, system):
        sub_id = system.subscribe(MY_XYLEME, owner_email="u@x")
        system.unsubscribe(sub_id)
        result = system.feed_xml("http://inria.fr/Xy/members.xml", MEMBERS_V1)
        assert result.alert is None

    def test_cost_control_wired(self, system):
        bad = MY_XYLEME.replace(
            'URL extends "http://inria.fr/Xy/"', 'self contains "the"'
        )
        with pytest.raises(ResourceLimitError):
            system.subscribe(bad.replace("MyXyleme", "Bad"), owner_email="u@x")

    def test_feed_stream(self, system):
        system.subscribe(MY_XYLEME, owner_email="u@x")
        results = system.run_stream(
            [
                Fetch("http://inria.fr/Xy/members.xml", MEMBERS_V1),
                Fetch("http://elsewhere.org/x.xml", "<r/>"),
            ]
        )
        assert len(results) == 2
        assert system.documents_fed == 2
