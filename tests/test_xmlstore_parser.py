import pytest

from repro.errors import XMLSyntaxError
from repro.xmlstore import parse
from repro.xmlstore.nodes import ElementNode, TextNode


class TestBasicParsing:
    def test_root_tag(self):
        assert parse("<catalog/>").root.tag == "catalog"

    def test_nested_children(self):
        doc = parse("<a><b><c/></b></a>")
        assert doc.root.children[0].tag == "b"
        assert doc.root.children[0].children[0].tag == "c"

    def test_text_content(self):
        doc = parse("<a>hello</a>")
        assert doc.root.text_content() == "hello"

    def test_attributes(self):
        doc = parse('<a href="http://x/">link</a>')
        assert doc.root.attributes["href"] == "http://x/"

    def test_mixed_content_order(self):
        doc = parse("<a>one<b/>two</a>")
        children = doc.root.children
        assert isinstance(children[0], TextNode)
        assert isinstance(children[1], ElementNode)
        assert isinstance(children[2], TextNode)

    def test_adjacent_text_tokens_folded(self):
        doc = parse("<a>x&amp;y</a>")
        assert len(doc.root.children) == 1
        assert doc.root.text_content() == "x&y"

    def test_doctype_captured(self):
        doc = parse('<!DOCTYPE m SYSTEM "http://d/m.dtd"><m/>')
        assert doc.dtd_url == "http://d/m.dtd"
        assert doc.doctype_name == "m"


class TestWhitespace:
    def test_interelement_whitespace_dropped_by_default(self):
        doc = parse("<a>\n  <b/>\n</a>")
        assert len(doc.root.children) == 1

    def test_keep_whitespace_option(self):
        doc = parse("<a>\n  <b/>\n</a>", keep_whitespace=True)
        assert len(doc.root.children) == 3

    def test_significant_whitespace_in_text_kept(self):
        doc = parse("<a>  padded  </a>")
        assert doc.root.text_content() == "  padded  "


class TestWellFormedness:
    def test_mismatched_tags_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><b></a></b>")

    def test_unclosed_element_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><b>")

    def test_stray_end_tag_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a/></b>")

    def test_two_roots_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a/><b/>")

    def test_empty_document_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("   ")

    def test_text_outside_root_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a/>stray")

    def test_doctype_after_root_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a/><!DOCTYPE a>")


class TestPaperExamples:
    def test_member_list(self):
        doc = parse(
            "<Report>"
            '<UpdatedPage url="http://inria.fr/Xy/index.html"/>'
            "<Member><name>nguyen</name><fn>benjamin</fn></Member>"
            "</Report>"
        )
        member = doc.root.first("Member")
        assert member is not None
        assert member.first("name").text_content() == "nguyen"
