import pytest

from repro.core import (
    Alert,
    AtomicEventKey,
    FlowPartitionedProcessor,
    SubscriptionPartitionedProcessor,
)
from repro.errors import MonitoringError


def key(kind, argument=None):
    return AtomicEventKey(kind, argument)


def make_events(processor, count):
    return [
        processor.register(
            [key("url_eq", f"http://site{i}/"), key("dtd_eq", f"d{i % 3}")]
        )
        for i in range(count)
    ]


class TestFlowPartitioning:
    def test_every_shard_knows_every_subscription(self):
        processor = FlowPartitionedProcessor(shard_count=4)
        event = processor.register([key("url_eq", "u")])
        for shard in processor.shards:
            assert shard.matcher.match(list(event.atomic_codes)) == [
                event.code
            ]

    def test_each_document_hits_exactly_one_shard(self):
        processor = FlowPartitionedProcessor(shard_count=4)
        event = processor.register([key("url_eq", "u")])
        for url in [f"http://doc{i}/" for i in range(40)]:
            processor.process_alert(Alert(url, list(event.atomic_codes)))
        stats = processor.stats()
        assert stats.alerts_processed == 40
        per_shard = [s.stats.alerts_processed for s in processor.shards]
        assert sum(per_shard) == 40
        assert max(per_shard) < 40  # spread across shards

    def test_routing_is_deterministic(self):
        processor = FlowPartitionedProcessor(shard_count=4)
        assert processor.shard_for("http://a/") == processor.shard_for(
            "http://a/"
        )

    def test_match_results_equal_single_processor(self):
        sharded = FlowPartitionedProcessor(shard_count=3)
        event = sharded.register([key("url_eq", "u"), key("doc_updated")])
        notifications = sharded.process_alert(
            Alert("http://any/", sorted(event.atomic_codes))
        )
        assert [n.complex_code for n in notifications] == [event.code]

    def test_unregister_removes_from_all_shards(self):
        processor = FlowPartitionedProcessor(shard_count=3)
        event = processor.register([key("url_eq", "u")])
        processor.unregister(event.code)
        for shard in processor.shards:
            assert len(shard.matcher) == 0

    def test_invalid_shard_count(self):
        with pytest.raises(MonitoringError):
            FlowPartitionedProcessor(shard_count=0)


class TestSubscriptionPartitioning:
    def test_subscriptions_spread_across_shards(self):
        processor = SubscriptionPartitionedProcessor(shard_count=4)
        make_events(processor, 20)
        sizes = [len(shard.matcher) for shard in processor.shards]
        assert sum(sizes) == 20
        assert max(sizes) == 5  # least-loaded placement balances exactly

    def test_documents_visit_every_shard(self):
        processor = SubscriptionPartitionedProcessor(shard_count=4)
        events = make_events(processor, 8)
        codes = sorted(
            {code for event in events for code in event.atomic_codes}
        )
        notifications = processor.process_alert(Alert("http://d/", codes))
        assert {n.complex_code for n in notifications} == {
            event.code for event in events
        }
        for shard in processor.shards:
            assert shard.stats.alerts_processed == 1

    def test_empty_shards_skip_alert_inspection(self):
        processor = SubscriptionPartitionedProcessor(shard_count=4)
        events = make_events(processor, 2)  # occupies 2 of the 4 shards
        codes = sorted(
            {code for event in events for code in event.atomic_codes}
        )
        notifications = processor.process_alert(Alert("http://d/", codes))
        assert {n.complex_code for n in notifications} == {
            event.code for event in events
        }
        per_shard = [s.stats.alerts_processed for s in processor.shards]
        assert per_shard.count(0) == 2  # empty shards were never consulted
        assert processor.stats().alerts_processed == 1

    def test_emptied_shard_skipped_after_unregister(self):
        processor = SubscriptionPartitionedProcessor(shard_count=2)
        events = make_events(processor, 2)
        processor.unregister(events[1].code)
        codes = sorted(events[0].atomic_codes)
        processor.process_alert(Alert("http://d/", codes))
        assert [s.stats.alerts_processed for s in processor.shards] == [1, 0]

    def test_unregister_from_home_shard(self):
        processor = SubscriptionPartitionedProcessor(shard_count=2)
        events = make_events(processor, 4)
        processor.unregister(events[0].code)
        assert sum(len(s.matcher) for s in processor.shards) == 3

    def test_unregister_unknown_raises(self):
        processor = SubscriptionPartitionedProcessor(shard_count=2)
        with pytest.raises(MonitoringError):
            processor.unregister(999)

    def test_structure_stats_aggregate(self):
        processor = SubscriptionPartitionedProcessor(shard_count=2)
        make_events(processor, 6)
        stats = processor.structure_stats()
        assert stats["marks"] == 6


class TestEquivalenceAcrossDistributions:
    def test_all_three_layouts_agree(self):
        specs = [
            [key("url_eq", "u"), key("dtd_eq", "d")],
            [key("url_eq", "u")],
            [key("dtd_eq", "d"), key("domain_eq", "x")],
        ]
        flow = FlowPartitionedProcessor(shard_count=3)
        partitioned = SubscriptionPartitionedProcessor(shard_count=3)
        flow_events = [flow.register(s) for s in specs]
        part_events = [partitioned.register(s) for s in specs]
        # Build the alert in each registry's own code space.
        flow_codes = sorted(
            {c for e in flow_events[:2] for c in e.atomic_codes}
        )
        part_codes = sorted(
            {c for e in part_events[:2] for c in e.atomic_codes}
        )
        flow_result = {
            n.complex_code
            for n in flow.process_alert(Alert("http://d/", flow_codes))
        }
        part_result = {
            n.complex_code
            for n in partitioned.process_alert(Alert("http://d/", part_codes))
        }
        assert flow_result == {flow_events[0].code, flow_events[1].code}
        assert part_result == {part_events[0].code, part_events[1].code}
