import pytest

from repro.core import AESMatcher, sort_event_set
from repro.errors import MonitoringError


class TestPaperFigure4Example:
    """The worked example of Section 4.2 (Figure 4 data structure).

    Complex events (codes chosen as in the figure):
      c0:{a0} c10:{a1,a3} c201:{a1,a3,a4} c3:{a1,a3,a5} c43:{a1,a5,a6}
      c25:{a1,a5,a8} c9:{a1,a7} c527:{a2} c4:{a5} c15:{a3}(under a3? no —
      the figure's H-level a3 cell) ... we register the subset needed for
      the two traced runs.
    """

    def setup_method(self):
        self.matcher = AESMatcher()
        events = {
            10: [1, 3],
            201: [1, 3, 4],
            3: [1, 3, 5],
            43: [1, 5, 6],
            25: [1, 5, 8],
            9: [1, 7],
            527: [2],
            4: [5],
            64: [3, 8],  # "c?" {a3,a8} so the trace detects it
            66: [8],     # {a8}
        }
        for code, atomic in events.items():
            self.matcher.add(code, atomic)

    def test_first_trace(self):
        # S = {a1, a3, a8}: detects c10 {a1,a3}, c64 {a3,a8}, c66 {a8}.
        assert sorted(self.matcher.match([1, 3, 8])) == [10, 64, 66]

    def test_second_trace(self):
        # The paper's second run: S = {a0, a5, a8} detects c4 and c25-less
        # set; here {a5} -> c4, {a8} -> c66.
        assert sorted(self.matcher.match([0, 5, 8])) == [4, 66]

    def test_full_chain(self):
        assert sorted(self.matcher.match([1, 3, 4, 5, 6, 7, 8])) == sorted(
            [10, 201, 3, 43, 25, 9, 4, 64, 66]
        )


class TestBasics:
    def test_empty_matcher_matches_nothing(self):
        assert AESMatcher().match([1, 2, 3]) == []

    def test_exact_set_matches(self):
        matcher = AESMatcher()
        matcher.add(7, [2, 5, 9])
        assert matcher.match([2, 5, 9]) == [7]

    def test_subset_does_not_match(self):
        matcher = AESMatcher()
        matcher.add(7, [2, 5, 9])
        assert matcher.match([2, 5]) == []
        assert matcher.match([5, 9]) == []

    def test_superset_matches(self):
        matcher = AESMatcher()
        matcher.add(7, [2, 5])
        assert matcher.match([1, 2, 3, 5, 8]) == [7]

    def test_single_event_conjunction(self):
        matcher = AESMatcher()
        matcher.add(1, [4])
        assert matcher.match([4]) == [1]
        assert matcher.match([3, 4, 5]) == [1]

    def test_multiple_marks_on_one_cell(self):
        matcher = AESMatcher()
        matcher.add(1, [2, 4])
        matcher.add(2, [2, 4])
        assert sorted(matcher.match([2, 4])) == [1, 2]

    def test_unsorted_input_to_add_is_normalized(self):
        matcher = AESMatcher()
        matcher.add(1, [9, 2, 5])
        assert matcher.match([2, 5, 9]) == [1]

    def test_empty_event_rejected(self):
        with pytest.raises(MonitoringError):
            AESMatcher().add(1, [])

    def test_len_tracks_registrations(self):
        matcher = AESMatcher()
        matcher.add(1, [1])
        matcher.add(2, [1, 2])
        assert len(matcher) == 2


class TestRemoval:
    def test_removed_event_no_longer_matches(self):
        matcher = AESMatcher()
        matcher.add(1, [2, 4])
        matcher.remove(1, [2, 4])
        assert matcher.match([2, 4]) == []
        assert len(matcher) == 0

    def test_removal_keeps_siblings(self):
        matcher = AESMatcher()
        matcher.add(1, [2, 4])
        matcher.add(2, [2, 4, 6])
        matcher.remove(1, [2, 4])
        assert matcher.match([2, 4, 6]) == [2]

    def test_removal_prunes_empty_tables(self):
        matcher = AESMatcher()
        matcher.add(1, [2, 4, 6])
        matcher.remove(1, [2, 4, 6])
        stats = matcher.structure_stats()
        assert stats["cells"] == 0

    def test_removing_unknown_event_raises(self):
        matcher = AESMatcher()
        matcher.add(1, [2])
        with pytest.raises(MonitoringError):
            matcher.remove(9, [3, 4])

    def test_removing_wrong_mark_raises(self):
        matcher = AESMatcher()
        matcher.add(1, [2, 4])
        with pytest.raises(MonitoringError):
            matcher.remove(999, [2, 4])

    def test_add_remove_add_cycle(self):
        matcher = AESMatcher()
        for _ in range(3):
            matcher.add(5, [1, 2, 3])
            assert matcher.match([1, 2, 3]) == [5]
            matcher.remove(5, [1, 2, 3])
            assert matcher.match([1, 2, 3]) == []


class TestStructureStats:
    def test_marks_counted(self):
        matcher = AESMatcher()
        matcher.add(1, [1, 2])
        matcher.add(2, [1, 2])
        matcher.add(3, [1, 3])
        stats = matcher.structure_stats()
        assert stats["marks"] == 3

    def test_prefix_sharing_reduces_cells(self):
        shared = AESMatcher()
        shared.add(1, [1, 2, 3])
        shared.add(2, [1, 2, 4])
        # prefixes (1) and (1,2) shared: cells = 1 + 1 + 2
        assert shared.structure_stats()["cells"] == 4


class TestSortEventSet:
    def test_sorts_and_dedupes(self):
        assert sort_event_set([5, 1, 5, 3]) == [1, 3, 5]
