from repro.xmlstore import DTDRegistry


class TestRegistration:
    def test_register_returns_stable_id(self):
        registry = DTDRegistry()
        first = registry.register("http://d/catalog.dtd")
        again = registry.register("http://d/catalog.dtd")
        assert first == again

    def test_ids_start_at_one_and_increase(self):
        registry = DTDRegistry()
        assert registry.register("http://d/a.dtd") == 1
        assert registry.register("http://d/b.dtd") == 2

    def test_lookup_both_directions(self):
        registry = DTDRegistry()
        dtd_id = registry.register("http://d/a.dtd")
        assert registry.id_for("http://d/a.dtd") == dtd_id
        assert registry.url_for(dtd_id) == "http://d/a.dtd"

    def test_unknown_lookups_return_none(self):
        registry = DTDRegistry()
        assert registry.id_for("http://nowhere/") is None
        assert registry.url_for(99) is None

    def test_len_and_contains(self):
        registry = DTDRegistry()
        registry.register("http://d/a.dtd")
        assert len(registry) == 1
        assert "http://d/a.dtd" in registry


class TestDomains:
    def test_domain_assignment(self):
        registry = DTDRegistry()
        registry.register("http://d/bio.dtd", domain="biology")
        assert registry.domain_for("http://d/bio.dtd") == "biology"

    def test_registration_without_domain_keeps_existing(self):
        registry = DTDRegistry()
        registry.register("http://d/bio.dtd", domain="biology")
        registry.register("http://d/bio.dtd")
        assert registry.domain_for("http://d/bio.dtd") == "biology"

    def test_domain_can_be_reassigned(self):
        registry = DTDRegistry()
        registry.register("http://d/x.dtd", domain="a")
        registry.register("http://d/x.dtd", domain="b")
        assert registry.domain_for("http://d/x.dtd") == "b"

    def test_dtds_in_domain(self):
        registry = DTDRegistry()
        registry.register("http://d/a.dtd", domain="culture")
        registry.register("http://d/b.dtd", domain="culture")
        registry.register("http://d/c.dtd", domain="commerce")
        assert sorted(registry.dtds_in_domain("culture")) == [
            "http://d/a.dtd",
            "http://d/b.dtd",
        ]

    def test_unassigned_domain_is_none(self):
        registry = DTDRegistry()
        registry.register("http://d/a.dtd")
        assert registry.domain_for("http://d/a.dtd") is None
