import pytest

from repro.alerters import XMLAlerter
from repro.alerters.context import FetchedDocument
from repro.core import AtomicEventKey
from repro.diff import DOC_NEW, DOC_UPDATED, XidSpace, classify_changes, compute_delta
from repro.repository import DocumentMeta
from repro.xmlstore import parse


def key(kind, argument=None):
    return AtomicEventKey(kind, argument)


def fetched_xml(source, status=DOC_NEW, changes=None, url="http://x/a.xml"):
    return FetchedDocument(
        url=url,
        meta=DocumentMeta(doc_id=1, url=url),
        status=status,
        document=parse(source),
        changes=changes,
    )


def fetched_with_changes(old_source, new_source):
    old = parse(old_source)
    new = parse(new_source)
    space = XidSpace()
    space.assign_fresh(old.root)
    delta = compute_delta(old, new, space)
    changes = classify_changes(old, new, delta)
    return FetchedDocument(
        url="http://x/a.xml",
        meta=DocumentMeta(doc_id=1, url="http://x/a.xml"),
        status=DOC_UPDATED,
        document=new,
        changes=changes,
    )


@pytest.fixture
def alerter():
    return XMLAlerter()


class TestSelfContains:
    def test_word_anywhere_in_document(self, alerter):
        alerter.register(1, key("self_contains", "camera"))
        codes, _ = alerter.detect(
            fetched_xml("<c><p><d>a great camera deal</d></p></c>")
        )
        assert codes == {1}

    def test_word_absent(self, alerter):
        alerter.register(1, key("self_contains", "camera"))
        assert alerter.detect(fetched_xml("<c>nothing here</c>"))[0] == set()

    def test_word_matching_is_case_insensitive_via_normalization(
        self, alerter
    ):
        alerter.register(1, key("self_contains", "camera"))
        assert alerter.detect(fetched_xml("<c>CAMERA</c>"))[0] == {1}


class TestTagContains:
    def test_contains_matches_anywhere_in_subtree(self, alerter):
        # Section 6.3: "the word with a particular tag must be found
        # anywhere in the subtree".
        alerter.register(2, key("tag_present", ("Product", "camera", False)))
        codes, _ = alerter.detect(
            fetched_xml(
                "<catalog><Product><desc><b>camera</b></desc></Product>"
                "</catalog>"
            )
        )
        assert codes == {2}

    def test_contains_wrong_tag_does_not_fire(self, alerter):
        alerter.register(2, key("tag_present", ("Product", "camera", False)))
        codes, _ = alerter.detect(
            fetched_xml("<catalog><Other>camera</Other></catalog>")
        )
        assert codes == set()

    def test_strict_contains_requires_direct_data_child(self, alerter):
        alerter.register(3, key("tag_present", ("Product", "camera", True)))
        nested = fetched_xml(
            "<catalog><Product><desc>camera</desc></Product></catalog>"
        )
        assert alerter.detect(nested)[0] == set()
        direct = fetched_xml(
            "<catalog><Product>a camera indeed</Product></catalog>"
        )
        assert alerter.detect(direct)[0] == {3}

    def test_strict_contains_across_separating_element(self, alerter):
        # "two data children of the node may be separated by an element".
        alerter.register(3, key("tag_present", ("p", "last", True)))
        document = fetched_xml("<r><p>first<b>mid</b>last words</p></r>")
        assert alerter.detect(document)[0] == {3}

    def test_bare_tag_presence(self, alerter):
        alerter.register(4, key("tag_present", ("Member", None, False)))
        assert alerter.detect(
            fetched_xml("<members><Member/></members>")
        )[0] == {4}
        assert alerter.detect(fetched_xml("<members/>"))[0] == set()


class TestChangeConditions:
    def test_new_element(self, alerter):
        alerter.register(5, key("tag_new", ("Member", None, False)))
        document = fetched_with_changes(
            "<members><Member><name>a</name></Member></members>",
            "<members><Member><name>a</name></Member>"
            "<Member><name>b</name></Member></members>",
        )
        codes, data = alerter.detect(document)
        assert codes == {5}
        assert any("<name>b</name>" in payload for payload in data[5])

    def test_updated_element_with_word(self, alerter):
        alerter.register(
            6, key("tag_updated", ("Product", "camera", False))
        )
        document = fetched_with_changes(
            "<c><Product><name>camera</name><price>10</price></Product></c>",
            "<c><Product><name>camera</name><price>12</price></Product></c>",
        )
        assert alerter.detect(document)[0] == {6}

    def test_updated_element_without_word_match(self, alerter):
        alerter.register(
            6, key("tag_updated", ("Product", "telescope", False))
        )
        document = fetched_with_changes(
            "<c><Product><price>10</price></Product></c>",
            "<c><Product><price>12</price></Product></c>",
        )
        assert alerter.detect(document)[0] == set()

    def test_deleted_element(self, alerter):
        alerter.register(7, key("tag_deleted", ("Product", None, False)))
        document = fetched_with_changes(
            "<c><Product><name>x</name></Product></c>", "<c/>"
        )
        assert alerter.detect(document)[0] == {7}

    def test_brand_new_document_elements_count_as_new(self, alerter):
        alerter.register(5, key("tag_new", ("Member", None, False)))
        document = fetched_xml(
            "<members><Member/></members>", status=DOC_NEW
        )
        assert alerter.detect(document)[0] == {5}

    def test_unchanged_document_raises_no_change_events(self, alerter):
        alerter.register(5, key("tag_new", ("Member", None, False)))
        document = fetched_xml(
            "<members><Member/></members>", status="unchanged"
        )
        assert alerter.detect(document)[0] == set()


class TestLifecycle:
    def test_unregister_contains(self, alerter):
        alerter.register(2, key("tag_present", ("p", "w", False)))
        alerter.unregister(2, key("tag_present", ("p", "w", False)))
        assert alerter.detect(fetched_xml("<r><p>w</p></r>"))[0] == set()

    def test_unregister_change_condition(self, alerter):
        alerter.register(5, key("tag_new", ("m", None, False)))
        alerter.unregister(5, key("tag_new", ("m", None, False)))
        document = fetched_with_changes("<r/>", "<r><m/></r>")
        assert alerter.detect(document)[0] == set()

    def test_html_document_ignored(self, alerter):
        alerter.register(1, key("self_contains", "x"))
        document = FetchedDocument(
            url="http://h/",
            meta=DocumentMeta(doc_id=1, url="http://h/"),
            status=DOC_NEW,
            raw_content="<html>x</html>",
        )
        assert alerter.detect(document)[0] == set()


class TestDataPayloads:
    def test_payload_capped(self, alerter):
        from repro.alerters.xml_alerter import MAX_PAYLOAD_ELEMENTS

        alerter.register(5, key("tag_new", ("m", None, False)))
        many = "".join(f"<m>{i}</m>" for i in range(MAX_PAYLOAD_ELEMENTS + 10))
        document = fetched_with_changes("<r/>", f"<r>{many}</r>")
        _, data = alerter.detect(document)
        assert len(data[5]) == MAX_PAYLOAD_ELEMENTS
