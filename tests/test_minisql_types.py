import pytest

from repro.errors import SchemaError
from repro.minisql import BOOLEAN, Column, INTEGER, REAL, TEXT, TableSchema, schema


class TestColumn:
    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("x", "BLOB")

    def test_primary_key_implies_not_null(self):
        column = Column("id", INTEGER, primary_key=True)
        assert not column.nullable

    def test_integer_coercion(self):
        column = Column("n", INTEGER)
        assert column.coerce(5) == 5
        with pytest.raises(SchemaError):
            column.coerce("5")
        with pytest.raises(SchemaError):
            column.coerce(True)  # bool is not INTEGER

    def test_real_accepts_int_and_float(self):
        column = Column("x", REAL)
        assert column.coerce(2) == 2.0
        assert column.coerce(2.5) == 2.5
        with pytest.raises(SchemaError):
            column.coerce("2.5")

    def test_text(self):
        column = Column("t", TEXT)
        assert column.coerce("hello") == "hello"
        with pytest.raises(SchemaError):
            column.coerce(5)

    def test_boolean(self):
        column = Column("b", BOOLEAN)
        assert column.coerce(True) is True
        with pytest.raises(SchemaError):
            column.coerce(1)

    def test_null_handling(self):
        nullable = Column("a", TEXT)
        assert nullable.coerce(None) is None
        strict = Column("b", TEXT, nullable=False)
        with pytest.raises(SchemaError):
            strict.coerce(None)


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            schema("t", Column("a", TEXT), Column("a", TEXT))

    def test_two_primary_keys_rejected(self):
        with pytest.raises(SchemaError):
            schema(
                "t",
                Column("a", INTEGER, primary_key=True),
                Column("b", INTEGER, primary_key=True),
            )

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(name="t", columns=())

    def test_primary_key_lookup(self):
        s = schema("t", Column("id", INTEGER, primary_key=True),
                   Column("x", TEXT))
        assert s.primary_key == "id"
        assert schema("u", Column("x", TEXT)).primary_key is None

    def test_validate_row_fills_missing_with_null(self):
        s = schema("t", Column("a", TEXT), Column("b", INTEGER))
        assert s.validate_row({"a": "x"}) == {"a": "x", "b": None}

    def test_validate_row_rejects_unknown_columns(self):
        s = schema("t", Column("a", TEXT))
        with pytest.raises(SchemaError):
            s.validate_row({"zz": 1})

    def test_roundtrip_via_dict(self):
        s = schema(
            "t",
            Column("id", INTEGER, primary_key=True),
            Column("x", TEXT, nullable=True),
        )
        again = TableSchema.from_dict(s.to_dict())
        assert again == s
