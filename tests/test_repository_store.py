import pytest

from repro.diff import DOC_NEW, DOC_UNCHANGED, DOC_UPDATED
from repro.errors import DocumentNotFound, RepositoryError
from repro.xmlstore import serialize


class TestStoreXML:
    def test_first_store_is_new(self, repository):
        outcome = repository.store_xml("http://x/a.xml", "<r><a/></r>")
        assert outcome.status == DOC_NEW
        assert outcome.meta.version == 1
        assert outcome.is_new and outcome.changed

    def test_unchanged_refetch(self, repository, clock):
        repository.store_xml("http://x/a.xml", "<r><a/></r>")
        clock.advance(10)
        outcome = repository.store_xml("http://x/a.xml", "<r><a/></r>")
        assert outcome.status == DOC_UNCHANGED
        assert outcome.meta.version == 1
        assert not outcome.changed

    def test_updated_refetch_produces_delta(self, repository, clock):
        repository.store_xml("http://x/a.xml", "<r><a/></r>")
        clock.advance(10)
        outcome = repository.store_xml("http://x/a.xml", "<r><a/><b/></r>")
        assert outcome.status == DOC_UPDATED
        assert outcome.meta.version == 2
        assert outcome.delta is not None and len(outcome.delta.inserts) == 1
        assert outcome.old_document is not None

    def test_last_accessed_and_updated_tracked(self, repository, clock):
        repository.store_xml("http://x/a.xml", "<r/>")
        first_time = clock.now()
        clock.advance(100)
        repository.store_xml("http://x/a.xml", "<r/>")
        meta = repository.meta_for_url("http://x/a.xml")
        assert meta.last_updated == first_time
        assert meta.last_accessed == first_time + 100

    def test_domain_classified_on_store(self, repository):
        outcome = repository.store_xml(
            "http://m/c.xml", "<museum><painting/></museum>"
        )
        assert outcome.meta.domain == "culture"

    def test_dtd_registered_on_store(self, repository):
        outcome = repository.store_xml(
            "http://x/a.xml",
            '<!DOCTYPE r SYSTEM "http://d/r.dtd"><r/>',
        )
        assert outcome.meta.dtd_url == "http://d/r.dtd"
        assert outcome.meta.dtd_id is not None

    def test_root_change_restarts_lineage(self, repository, clock):
        repository.store_xml("http://x/a.xml", "<old/>")
        clock.advance(5)
        outcome = repository.store_xml("http://x/a.xml", "<new/>")
        assert outcome.status == DOC_UPDATED
        assert outcome.delta is None
        assert outcome.old_document.root.tag == "old"
        assert repository.retained_versions(outcome.meta.doc_id) == [2]

    def test_html_url_cannot_become_xml(self, repository):
        repository.store_html("http://x/p", "<html>hi</html>")
        with pytest.raises(RepositoryError):
            repository.store_xml("http://x/p", "<r/>")


class TestStoreHTML:
    def test_new_then_unchanged_then_updated(self, repository):
        first = repository.store_html("http://x/p.html", "<html>v1</html>")
        assert first.status == DOC_NEW
        same = repository.store_html("http://x/p.html", "<html>v1</html>")
        assert same.status == DOC_UNCHANGED
        changed = repository.store_html("http://x/p.html", "<html>v2</html>")
        assert changed.status == DOC_UPDATED
        assert changed.meta.version == 2

    def test_html_not_warehoused(self, repository):
        outcome = repository.store_html("http://x/p.html", "<html/>")
        with pytest.raises(RepositoryError):
            repository.document(outcome.meta.doc_id)


class TestVersions:
    def test_reconstruct_older_versions(self, repository, clock):
        url = "http://x/a.xml"
        repository.store_xml(url, "<r><a>1</a></r>")
        clock.advance(1)
        repository.store_xml(url, "<r><a>2</a></r>")
        clock.advance(1)
        repository.store_xml(url, "<r><a>2</a><b/></r>")
        doc_id = repository.meta_for_url(url).doc_id
        assert repository.retained_versions(doc_id) == [3, 2, 1]
        v1 = repository.version(doc_id, 1)
        assert serialize(v1) == "<r><a>1</a></r>"
        v2 = repository.version(doc_id, 2)
        assert serialize(v2) == "<r><a>2</a></r>"

    def test_version_retention_bounded(self, classifier, clock):
        from repro.repository import Repository

        repository = Repository(
            classifier=classifier, clock=clock, keep_versions=3
        )
        url = "http://x/a.xml"
        for i in range(6):
            repository.store_xml(url, f"<r><a>{i}</a></r>")
            clock.advance(1)
        doc_id = repository.meta_for_url(url).doc_id
        retained = repository.retained_versions(doc_id)
        assert retained[0] == 6
        assert len(retained) == 3
        with pytest.raises(RepositoryError):
            repository.version(doc_id, 1)

    def test_current_version_is_a_copy(self, repository):
        repository.store_xml("http://x/a.xml", "<r><a>1</a></r>")
        doc_id = repository.meta_for_url("http://x/a.xml").doc_id
        doc = repository.document(doc_id)
        doc.root.children[0].detach()
        assert serialize(repository.document(doc_id)) == "<r><a>1</a></r>"


class TestLookupsAndRemoval:
    def test_lookup_by_url_and_id(self, repository):
        outcome = repository.store_xml("http://x/a.xml", "<r/>")
        assert repository.meta(outcome.meta.doc_id).url == "http://x/a.xml"
        assert repository.has_url("http://x/a.xml")

    def test_missing_lookups_raise(self, repository):
        with pytest.raises(DocumentNotFound):
            repository.meta_for_url("http://missing/")
        with pytest.raises(DocumentNotFound):
            repository.document(123)

    def test_remove(self, repository):
        repository.store_xml("http://x/a.xml", "<r>word</r>")
        doc_id = repository.meta_for_url("http://x/a.xml").doc_id
        repository.remove("http://x/a.xml")
        assert not repository.has_url("http://x/a.xml")
        assert repository.indexes.documents_with_word("word") == set()
        with pytest.raises(DocumentNotFound):
            repository.document(doc_id)

    def test_len_and_xml_ids(self, repository):
        repository.store_xml("http://x/a.xml", "<r/>")
        repository.store_html("http://x/p.html", "<html/>")
        assert len(repository) == 2
        assert len(repository.xml_doc_ids()) == 1

    def test_add_importance(self, repository):
        repository.store_xml("http://x/a.xml", "<r/>")
        repository.add_importance("http://x/a.xml", 2.5)
        assert repository.meta_for_url("http://x/a.xml").importance == 3.5
