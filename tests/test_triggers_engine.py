import pytest

from repro.clock import SECONDS_PER_DAY, SECONDS_PER_WEEK, SimulatedClock
from repro.errors import TriggerError
from repro.language.ast import ContinuousQuery, NotificationTrigger
from repro.query import QueryEngine
from repro.triggers import TriggerEngine


@pytest.fixture
def warehouse(repository, clock):
    repository.store_xml(
        "http://rijks.nl/c.xml",
        "<museum><address>Amsterdam</address>"
        "<painting><title>Night Watch</title></painting></museum>",
    )
    return repository


@pytest.fixture
def deliveries():
    return []


@pytest.fixture
def engine(warehouse, clock, deliveries):
    def deliver(subscription_id, query_name, elements):
        deliveries.append((subscription_id, query_name, elements))

    return TriggerEngine(
        query_engine=QueryEngine(warehouse), deliver=deliver, clock=clock
    )


AMSTERDAM = (
    "select p/title from culture/museum m, m/painting p"
    ' where m/address contains "Amsterdam"'
)


def periodic(name="Paintings", frequency="biweekly", delta=False):
    return ContinuousQuery(
        name=name, query_text=AMSTERDAM, delta=delta, frequency=frequency
    )


class TestPeriodicEvaluation:
    def test_not_due_before_period(self, engine, clock, deliveries):
        engine.register(1, "S", periodic())
        assert engine.tick() == 0
        assert deliveries == []

    def test_due_after_period(self, engine, clock, deliveries):
        engine.register(1, "S", periodic())
        clock.advance(SECONDS_PER_WEEK / 2)
        assert engine.tick() == 1
        ((sub_id, name, elements),) = deliveries
        assert sub_id == 1 and name == "Paintings"
        assert elements[0].tag == "Paintings"
        assert "Night Watch" in elements[0].text_content()

    def test_reschedules_after_firing(self, engine, clock, deliveries):
        engine.register(1, "S", periodic(frequency="daily"))
        clock.advance(SECONDS_PER_DAY)
        engine.tick()
        engine.tick()  # same instant: nothing new
        assert len(deliveries) == 1
        clock.advance(SECONDS_PER_DAY)
        engine.tick()
        assert len(deliveries) == 2

    def test_long_gap_evaluates_once(self, engine, clock, deliveries):
        # A week-long gap for a daily query catches up with ONE evaluation.
        engine.register(1, "S", periodic(frequency="daily"))
        clock.advance(SECONDS_PER_WEEK)
        assert engine.tick() == 1


class TestDeltaQueries:
    def test_first_evaluation_full_result(self, engine, clock, deliveries):
        engine.register(1, "S", periodic(delta=True))
        clock.advance(SECONDS_PER_WEEK / 2)
        engine.tick()
        assert deliveries[0][2][0].tag == "Paintings"

    def test_unchanged_result_suppressed(self, engine, clock, deliveries):
        engine.register(1, "S", periodic(delta=True))
        clock.advance(SECONDS_PER_WEEK / 2)
        engine.tick()
        clock.advance(SECONDS_PER_WEEK / 2)
        engine.tick()
        assert len(deliveries) == 1  # no change -> no notification

    def test_changed_result_delivers_delta(
        self, engine, warehouse, clock, deliveries
    ):
        engine.register(1, "S", periodic(delta=True))
        clock.advance(SECONDS_PER_WEEK / 2)
        engine.tick()
        warehouse.store_xml(
            "http://rijks.nl/c.xml",
            "<museum><address>Amsterdam</address>"
            "<painting><title>Night Watch</title></painting>"
            "<painting><title>Milkmaid</title></painting></museum>",
        )
        clock.advance(SECONDS_PER_WEEK / 2)
        engine.tick()
        assert len(deliveries) == 2
        delta_element = deliveries[1][2][0]
        assert delta_element.tag == "Paintings-delta"
        assert delta_element.first("inserted") is not None


class TestNotificationTriggers:
    def test_triggered_by_notification(self, engine, deliveries):
        engine.register(
            1,
            "S",
            ContinuousQuery(
                name="MyCompetitors",
                query_text=AMSTERDAM,
                trigger=NotificationTrigger(
                    subscription="S", query="ChangeInMyProducts"
                ),
            ),
        )
        assert engine.tick() == 0  # no time-based schedule
        fired = engine.notification_received("S", "ChangeInMyProducts")
        assert fired == 1
        assert len(deliveries) == 1

    def test_unrelated_notification_ignored(self, engine, deliveries):
        engine.register(
            1,
            "S",
            ContinuousQuery(
                name="Q",
                query_text=AMSTERDAM,
                trigger=NotificationTrigger(subscription="S", query="X"),
            ),
        )
        assert engine.notification_received("S", "Other") == 0
        assert deliveries == []


class TestActionsAndLifecycle:
    def test_scheduled_action_at_date(self, engine, clock):
        fired = []
        engine.schedule_action(clock.now() + 100, lambda: fired.append(1))
        engine.tick()
        assert fired == []
        clock.advance(100)
        engine.tick()
        assert fired == [1]

    def test_on_notification_action(self, engine):
        fired = []
        engine.on_notification("S", "Q", lambda: fired.append(1))
        engine.notification_received("S", "Q")
        assert fired == [1]

    def test_duplicate_registration_rejected(self, engine):
        engine.register(1, "S", periodic())
        with pytest.raises(TriggerError):
            engine.register(1, "S", periodic())

    def test_invalid_definition_rejected(self, engine):
        with pytest.raises(TriggerError):
            engine.register(
                1, "S", ContinuousQuery(name="bad", query_text=AMSTERDAM)
            )

    def test_unregister_subscription(self, engine, clock, deliveries):
        engine.register(1, "S", periodic(frequency="daily"))
        engine.unregister_subscription(1)
        clock.advance(SECONDS_PER_DAY)
        assert engine.tick() == 0

    def test_stats(self, engine, clock):
        engine.register(1, "S", periodic(frequency="daily"))
        clock.advance(SECONDS_PER_DAY)
        engine.tick()
        assert engine.stats.evaluations == 1
        assert engine.stats.notifications_emitted == 1
