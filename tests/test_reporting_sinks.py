from repro.clock import SECONDS_PER_DAY, SimulatedClock
from repro.language.frequencies import period_seconds
from repro.reporting import EmailSink, ReportArchive, WebPublisher


class TestEmailSink:
    def test_send_records_message(self):
        sink = EmailSink(clock=SimulatedClock(0.0))
        assert sink.send("u@x", "subject", "body")
        assert sink.total_sent == 1
        assert sink.sent[0].recipient == "u@x"

    def test_daily_capacity_defers_to_backlog(self):
        clock = SimulatedClock(0.0)
        sink = EmailSink(clock=clock, daily_capacity=3)
        for i in range(5):
            sink.send("u@x", "s", f"b{i}")
        assert sink.total_sent == 3
        assert sink.total_deferred == 2
        assert len(sink.backlog) == 2

    def test_backlog_drained_next_day(self):
        clock = SimulatedClock(0.0)
        sink = EmailSink(clock=clock, daily_capacity=3)
        for i in range(5):
            sink.send("u@x", "s", f"b{i}")
        clock.advance(SECONDS_PER_DAY)
        drained = sink.drain_backlog()
        assert drained == 2
        assert sink.total_sent == 5
        assert sink.backlog == []

    def test_per_day_accounting(self):
        clock = SimulatedClock(0.0)
        sink = EmailSink(clock=clock, daily_capacity=100)
        sink.send("u@x", "s", "b")
        clock.advance(SECONDS_PER_DAY)
        sink.send("u@x", "s", "b")
        sink.send("u@x", "s", "b")
        assert sink.sent_on_day(0) == 1
        assert sink.sent_on_day(1) == 2

    def test_kept_messages_bounded(self):
        sink = EmailSink(clock=SimulatedClock(0.0), keep_messages=5)
        for i in range(20):
            sink.send("u@x", "s", f"b{i}")
        assert len(sink.sent) == 5
        assert sink.sent[-1].body == "b19"
        assert sink.total_sent == 20


class TestWebPublisher:
    def test_publish_and_fetch(self):
        publisher = WebPublisher()
        number = publisher.publish(1, "<Report/>")
        assert publisher.fetch(1, number) == "<Report/>"

    def test_fetch_latest_by_default(self):
        publisher = WebPublisher()
        publisher.publish(1, "first")
        publisher.publish(1, "second")
        assert publisher.fetch(1) == "second"

    def test_unknown_subscription(self):
        assert WebPublisher().fetch(9) is None

    def test_retention_bounded(self):
        publisher = WebPublisher(keep_per_subscription=3)
        for i in range(10):
            publisher.publish(1, f"r{i}")
        assert publisher.count(1) == 3
        assert publisher.fetch(1, 0) == "r7"


class TestReportArchive:
    def test_archive_sets_expiry(self):
        clock = SimulatedClock(0.0)
        archive = ReportArchive(clock)
        report = archive.archive(1, "<Report/>", "monthly")
        assert report.expires_at == period_seconds("monthly")

    def test_garbage_collect_drops_expired(self):
        clock = SimulatedClock(0.0)
        archive = ReportArchive(clock)
        archive.archive(1, "old", "daily")
        archive.archive(1, "fresh", "monthly")
        clock.advance(2 * SECONDS_PER_DAY)
        collected = archive.garbage_collect()
        assert collected == 1
        bodies = [report.body for report in archive.reports_for(1)]
        assert bodies == ["fresh"]

    def test_drop_subscription(self):
        clock = SimulatedClock(0.0)
        archive = ReportArchive(clock)
        archive.archive(1, "x", "monthly")
        archive.drop_subscription(1)
        assert archive.reports_for(1) == []
