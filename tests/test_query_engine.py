import pytest

from repro.query import QueryEngine
from repro.xmlstore import parse


@pytest.fixture
def engine(repository):
    repository.store_xml(
        "http://rijks.nl/c.xml",
        "<museum><name>Rijksmuseum</name><address>Amsterdam</address>"
        "<painting><title>Night Watch</title><year>1642</year></painting>"
        "<painting><title>Milkmaid</title><year>1658</year></painting>"
        "</museum>",
    )
    repository.store_xml(
        "http://louvre.fr/c.xml",
        "<museum><name>Louvre</name><address>Paris</address>"
        "<painting><title>Mona Lisa</title><year>1503</year></painting>"
        "</museum>",
    )
    repository.store_xml(
        "http://inria.fr/Xy/members.xml",
        '<members><Member id="1"><name>nguyen</name></Member>'
        '<Member id="2"><name>preda</name></Member></members>',
    )
    return QueryEngine(repository)


class TestDomainQueries:
    def test_amsterdam_paintings(self, engine):
        result = engine.evaluate(
            'select p/title from culture/museum m, m/painting p'
            ' where m/address contains "Amsterdam"',
            name="AmsterdamPaintings",
        )
        titles = [item.text_content() for item in result]
        assert titles == ["Night Watch", "Milkmaid"]
        assert result.to_xml().startswith("<AmsterdamPaintings>")

    def test_numeric_comparison(self, engine):
        result = engine.evaluate(
            "select p/title from culture/museum m, m/painting p"
            " where p/year < 1600"
        )
        assert [i.text_content() for i in result] == ["Mona Lisa"]

    def test_unknown_domain_yields_empty(self, engine):
        result = engine.evaluate("select m from nowhere/museum m")
        assert len(result) == 0


class TestDocAndStarSources:
    def test_doc_source_with_descendant(self, engine):
        result = engine.evaluate(
            'select x/name from doc("http://inria.fr/Xy/members.xml")'
            "//Member x"
        )
        assert [i.text_content() for i in result] == ["nguyen", "preda"]

    def test_attribute_select(self, engine):
        result = engine.evaluate(
            'select x@id from doc("http://inria.fr/Xy/members.xml")//Member x'
        )
        assert list(result) == ["1", "2"]

    def test_star_source_scans_all_documents(self, engine):
        result = engine.evaluate("select t from *//title t")
        assert len(result) == 3


class TestConditionSemantics:
    def test_contains_is_word_based(self, engine):
        result = engine.evaluate(
            'select m/name from culture/museum m where m contains "watch"'
        )
        assert [i.text_content() for i in result] == ["Rijksmuseum"]

    def test_strict_contains_requires_direct_text(self, engine):
        nothing = engine.evaluate(
            'select m/name from culture/museum m where m strict contains'
            ' "watch"'
        )
        assert len(nothing) == 0
        direct = engine.evaluate(
            "select p from culture/museum m, m/painting p"
            ' where p/title strict contains "watch"'
        )
        assert len(direct) == 1

    def test_equality_on_text(self, engine):
        result = engine.evaluate(
            'select m from culture/museum m where m/name = "Louvre"'
        )
        assert len(result) == 1

    def test_string_comparison_fallback(self, engine):
        result = engine.evaluate(
            'select m/name from culture/museum m where m/name > "M"'
        )
        assert [i.text_content() for i in result] == ["Rijksmuseum"]


class TestOnDocument:
    def test_report_query_over_notification_stream(self, engine):
        report = parse(
            "<Report>"
            '<UpdatedPage url="http://a/"/>'
            '<UpdatedPage url="http://b/"/>'
            "<Member><name>nguyen</name></Member>"
            "</Report>"
        )
        result = engine.evaluate_on_document(
            "select u@url from Report/UpdatedPage u", report
        )
        assert list(result) == ["http://a/", "http://b/"]

    def test_results_are_copies(self, engine):
        result = engine.evaluate(
            "select p from culture/museum m, m/painting p where p/year < 1600"
        )
        element = result.to_element()
        element.children[0].detach()
        # Re-evaluating gives the same answer: the warehouse was untouched.
        again = engine.evaluate(
            "select p from culture/museum m, m/painting p where p/year < 1600"
        )
        assert len(again) == 1
