from repro.diff.signature import (
    document_signature,
    page_signature,
    subtree_signatures,
)
from repro.xmlstore import parse


class TestDocumentSignature:
    def test_identical_documents_same_signature(self):
        a = parse("<r><x>1</x></r>")
        b = parse("<r><x>1</x></r>")
        assert document_signature(a) == document_signature(b)

    def test_text_change_changes_signature(self):
        a = parse("<r><x>1</x></r>")
        b = parse("<r><x>2</x></r>")
        assert document_signature(a) != document_signature(b)

    def test_attribute_change_changes_signature(self):
        a = parse('<r k="1"/>')
        b = parse('<r k="2"/>')
        assert document_signature(a) != document_signature(b)

    def test_attribute_order_irrelevant(self):
        a = parse('<r a="1" b="2"/>')
        b = parse('<r b="2" a="1"/>')
        assert document_signature(a) == document_signature(b)

    def test_child_order_matters(self):
        a = parse("<r><x/><y/></r>")
        b = parse("<r><y/><x/></r>")
        assert document_signature(a) != document_signature(b)

    def test_tag_rename_changes_signature(self):
        assert document_signature(parse("<r><x/></r>")) != document_signature(
            parse("<r><z/></r>")
        )


class TestSubtreeSignatures:
    def test_every_node_has_a_signature(self):
        doc = parse("<r><a>t</a><b/></r>")
        signatures = subtree_signatures(doc.root)
        assert len(signatures) == len(list(doc.preorder()))

    def test_identical_subtrees_share_signature(self):
        doc = parse("<r><a><x>1</x></a><b><x>1</x></b></r>")
        signatures = subtree_signatures(doc.root)
        a, b = doc.root.children
        assert signatures[id(a.children[0])] == signatures[id(b.children[0])]

    def test_element_and_text_never_collide_on_content(self):
        doc = parse("<r><t>abc</t></r>")
        signatures = subtree_signatures(doc.root)
        element = doc.root.children[0]
        text = element.children[0]
        assert signatures[id(element)] != signatures[id(text)]


class TestPageSignature:
    def test_stable(self):
        assert page_signature("<html>x</html>") == page_signature(
            "<html>x</html>"
        )

    def test_sensitive_to_any_change(self):
        assert page_signature("<html>x</html>") != page_signature(
            "<html>y</html>"
        )

    def test_handles_unicode(self):
        assert isinstance(page_signature("héllo ✓"), int)
