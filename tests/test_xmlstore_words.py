from repro.xmlstore.words import (
    DEFAULT_STOP_WORDS,
    extract_words,
    normalize_word,
    unique_words,
)


class TestNormalization:
    def test_casefolded(self):
        assert normalize_word("Camera") == "camera"

    def test_already_lower_unchanged(self):
        assert normalize_word("xml") == "xml"


class TestExtraction:
    def test_simple_split(self):
        assert extract_words("new camera shipped") == [
            "new", "camera", "shipped",
        ]

    def test_punctuation_separates(self):
        assert extract_words("one,two;three.") == ["one", "two", "three"]

    def test_hyphenated_word_stays_whole(self):
        # The paper's example condition: category = "hi-fi".
        assert extract_words("great hi-fi sound") == ["great", "hi-fi", "sound"]

    def test_leading_trailing_hyphens_stripped(self):
        assert extract_words("-dash- 'quote'") == ["dash", "quote"]

    def test_numbers_are_words(self):
        assert extract_words("price 1642 euros") == ["price", "1642", "euros"]

    def test_case_folding_applied(self):
        assert extract_words("XML Warehouse") == ["xml", "warehouse"]

    def test_empty_text(self):
        assert extract_words("") == []
        assert extract_words("   ...   ") == []

    def test_duplicates_preserved_in_extract(self):
        assert extract_words("a b a") == ["a", "b", "a"]

    def test_unique_words_dedupes(self):
        assert unique_words("a b a") == {"a", "b"}

    def test_apostrophe_inside_word(self):
        assert extract_words("l'art d'amazon") == ["l'art", "d'amazon"]


class TestStopWords:
    def test_the_is_a_stop_word(self):
        # Section 5.4 names "the" explicitly.
        assert "the" in DEFAULT_STOP_WORDS

    def test_content_words_are_not(self):
        assert "camera" not in DEFAULT_STOP_WORDS
