from repro.repository import WarehouseIndexes
from repro.xmlstore import parse


def make_indexes():
    indexes = WarehouseIndexes()
    indexes.index_document(
        1,
        parse(
            '<!DOCTYPE c SYSTEM "http://d/c.dtd">'
            "<catalog><Product>digital camera</Product></catalog>"
        ),
        domain="commerce",
    )
    indexes.index_document(
        2, parse("<museum><painting>camera obscura</painting></museum>"),
        domain="culture",
    )
    return indexes


class TestLookups:
    def test_word_lookup(self):
        indexes = make_indexes()
        assert indexes.documents_with_word("camera") == {1, 2}
        assert indexes.documents_with_word("digital") == {1}

    def test_tag_lookup(self):
        indexes = make_indexes()
        assert indexes.documents_with_tag("Product") == {1}
        assert indexes.documents_with_tag("museum") == {2}

    def test_dtd_lookup(self):
        indexes = make_indexes()
        assert indexes.documents_with_dtd("http://d/c.dtd") == {1}

    def test_domain_lookup(self):
        indexes = make_indexes()
        assert indexes.documents_in_domain("commerce") == {1}

    def test_unknown_keys_empty(self):
        indexes = make_indexes()
        assert indexes.documents_with_word("zzz") == set()
        assert indexes.documents_in_domain("zzz") == set()

    def test_word_frequency(self):
        indexes = make_indexes()
        assert indexes.word_frequency("camera") == 2
        assert indexes.word_frequency("zzz") == 0

    def test_words_are_casefolded(self):
        indexes = WarehouseIndexes()
        indexes.index_document(5, parse("<a>CAMERA</a>"))
        assert indexes.documents_with_word("camera") == {5}


class TestMaintenance:
    def test_reindex_replaces_postings(self):
        indexes = make_indexes()
        indexes.index_document(1, parse("<other>fresh words</other>"))
        assert indexes.documents_with_word("digital") == set()
        assert indexes.documents_with_word("fresh") == {1}
        assert indexes.documents_with_tag("Product") == set()

    def test_unindex_removes_everything(self):
        indexes = make_indexes()
        indexes.unindex_document(1)
        assert indexes.documents_with_word("digital") == set()
        assert indexes.documents_with_dtd("http://d/c.dtd") == set()
        assert indexes.documents_in_domain("commerce") == set()

    def test_unindex_unknown_doc_is_noop(self):
        indexes = make_indexes()
        indexes.unindex_document(99)
        assert indexes.documents_with_word("camera") == {1, 2}

    def test_vocabulary_size(self):
        indexes = WarehouseIndexes()
        indexes.index_document(1, parse("<a>one two two</a>"))
        assert indexes.vocabulary_size() == 2
