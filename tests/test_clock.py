import pytest

from repro.clock import (
    SECONDS_PER_DAY,
    SECONDS_PER_WEEK,
    SimulatedClock,
    WallClock,
)


class TestSimulatedClock:
    def test_starts_at_given_time(self):
        assert SimulatedClock(start=123.0).now() == 123.0

    def test_defaults_to_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance_moves_forward(self):
        clock = SimulatedClock(10.0)
        clock.advance(5.0)
        assert clock.now() == 15.0

    def test_advance_days(self):
        clock = SimulatedClock()
        clock.advance_days(2)
        assert clock.now() == 2 * SECONDS_PER_DAY

    def test_advance_rejects_negative(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_set_time_forward(self):
        clock = SimulatedClock(100.0)
        clock.set_time(200.0)
        assert clock.now() == 200.0

    def test_set_time_rejects_past(self):
        clock = SimulatedClock(100.0)
        with pytest.raises(ValueError):
            clock.set_time(50.0)


class TestWallClock:
    def test_returns_increasing_real_time(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert second >= first > 1_000_000_000  # after 2001


def test_week_constant_consistency():
    assert SECONDS_PER_WEEK == 7 * SECONDS_PER_DAY
