"""The exception hierarchy: every subsystem error is a ReproError."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.XMLError,
            errors.XMLSyntaxError,
            errors.PathSyntaxError,
            errors.DiffError,
            errors.DeltaApplyError,
            errors.MiniSQLError,
            errors.SchemaError,
            errors.QueryError,
            errors.RepositoryError,
            errors.DocumentNotFound,
            errors.MonitoringError,
            errors.UnknownEventError,
            errors.SubscriptionError,
            errors.SubscriptionSyntaxError,
            errors.WeakConditionError,
            errors.ResourceLimitError,
            errors.ReportingError,
            errors.TriggerError,
        ],
    )
    def test_is_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_catch_all_surface(self):
        """One except clause covers any library failure."""
        from repro.xmlstore import parse

        with pytest.raises(errors.ReproError):
            parse("<broken")

    def test_syntax_errors_carry_positions(self):
        error = errors.XMLSyntaxError("bad", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_subscription_syntax_positions(self):
        error = errors.SubscriptionSyntaxError("bad", line=2, column=5)
        assert "line 2" in str(error)

    def test_positions_optional(self):
        error = errors.XMLSyntaxError("bad")
        assert str(error) == "bad"

    def test_state_explosion_is_monitoring_error(self):
        from repro.core import StateExplosionError

        assert issubclass(StateExplosionError, errors.MonitoringError)
