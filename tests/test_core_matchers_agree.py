"""Cross-validation of the three matcher engines.

The AES matcher, the naive scan and the counting baseline implement the
same specification (find all C_i ⊆ S); randomized and property-based tests
check they never disagree, including across removals.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AESMatcher, CountingMatcher, NaiveMatcher

ENGINES = [AESMatcher, NaiveMatcher, CountingMatcher]


def all_engines():
    return [factory() for factory in ENGINES]


complex_event_lists = st.lists(
    st.lists(
        st.integers(0, 60), min_size=1, max_size=6, unique=True
    ),
    min_size=0,
    max_size=40,
)
event_sets = st.lists(st.integers(0, 60), max_size=30, unique=True)


@settings(max_examples=120, deadline=None)
@given(complex_event_lists, event_sets)
def test_engines_agree_on_matches(events, detected):
    matchers = all_engines()
    for code, atomic in enumerate(events, start=1):
        for matcher in matchers:
            matcher.add(code, sorted(atomic))
    detected = sorted(detected)
    results = [sorted(matcher.match(detected)) for matcher in matchers]
    assert results[0] == results[1] == results[2]


@settings(max_examples=60, deadline=None)
@given(complex_event_lists, event_sets, st.randoms(use_true_random=False))
def test_engines_agree_after_removals(events, detected, rng):
    matchers = all_engines()
    registered = {}
    for code, atomic in enumerate(events, start=1):
        registered[code] = sorted(atomic)
        for matcher in matchers:
            matcher.add(code, registered[code])
    victims = [
        code for code in registered if rng.random() < 0.5
    ]
    for code in victims:
        for matcher in matchers:
            matcher.remove(code, registered[code])
        del registered[code]
    detected = sorted(detected)
    results = [sorted(matcher.match(detected)) for matcher in matchers]
    assert results[0] == results[1] == results[2]


@settings(max_examples=60, deadline=None)
@given(complex_event_lists, event_sets)
def test_match_against_reference_semantics(events, detected):
    """AES equals the mathematical definition: {i : C_i ⊆ S}."""
    matcher = AESMatcher()
    for code, atomic in enumerate(events, start=1):
        matcher.add(code, sorted(atomic))
    detected_set = set(detected)
    expected = sorted(
        code
        for code, atomic in enumerate(events, start=1)
        if set(atomic) <= detected_set
    )
    assert sorted(matcher.match(sorted(detected))) == expected


def test_randomized_large_agreement():
    rng = random.Random(2024)
    matchers = all_engines()
    events = {}
    for code in range(1, 2001):
        atomic = sorted(rng.sample(range(500), rng.randint(1, 5)))
        events[code] = atomic
        for matcher in matchers:
            matcher.add(code, atomic)
    for _ in range(200):
        detected = sorted(rng.sample(range(500), rng.randint(0, 50)))
        results = [sorted(m.match(detected)) for m in matchers]
        assert results[0] == results[1] == results[2]


def test_structure_stats_exposed_by_all_engines():
    for matcher in all_engines():
        matcher.add(1, [1, 2])
        stats = matcher.structure_stats()
        assert {"tables", "cells", "marks"} <= set(stats)
