import pytest

from repro.errors import SubscriptionSyntaxError
from repro.language import parse_subscription
from repro.language.ast import (
    CountCondition,
    ImmediateCondition,
    KIND_NEW,
    KIND_UPDATED,
    PeriodicCondition,
)

PAPER_SUBSCRIPTION = """
subscription MyXyleme

monitoring
select <UpdatedPage url=URL/>
where URL extends "http://inria.fr/Xy/"
  and modified self

monitoring
select X
from self//Member X
where URL = "http://inria.fr/Xy/members.xml"
  and new X

continuous ReferenceXyleme
select s/url from refs/site s where s contains "xyleme"
try biweekly

refresh "http://inria.fr/Xy/members.xml" weekly

report
when notifications.count > 100
"""


class TestPaperExample:
    def test_parses_fully(self):
        subscription = parse_subscription(PAPER_SUBSCRIPTION)
        assert subscription.name == "MyXyleme"
        assert len(subscription.monitoring) == 2
        assert len(subscription.continuous) == 1
        assert len(subscription.refreshes) == 1
        assert subscription.report is not None

    def test_first_monitoring_query(self):
        subscription = parse_subscription(PAPER_SUBSCRIPTION)
        query = subscription.monitoring[0]
        assert query.select.template == "<UpdatedPage url=URL/>"
        url_condition, status_condition = query.conditions
        assert url_condition.kind == "url_extends"
        assert url_condition.string == "http://inria.fr/Xy/"
        # "modified" is the paper's synonym for updated.
        assert status_condition.change_kind == KIND_UPDATED

    def test_second_monitoring_query(self):
        subscription = parse_subscription(PAPER_SUBSCRIPTION)
        query = subscription.monitoring[1]
        assert query.select.items == ("X",)
        assert query.from_bindings[0].path == "self//Member"
        assert query.from_bindings[0].variable == "X"
        element = query.conditions[1]
        assert element.kind == "element"
        assert element.change_kind == KIND_NEW
        assert element.target == "X"

    def test_continuous_query(self):
        subscription = parse_subscription(PAPER_SUBSCRIPTION)
        continuous = subscription.continuous[0]
        assert continuous.name == "ReferenceXyleme"
        assert continuous.frequency == "biweekly"
        assert continuous.query_text.startswith("select s/url")
        assert "when" not in continuous.query_text

    def test_report_condition_threshold(self):
        subscription = parse_subscription(PAPER_SUBSCRIPTION)
        (term,) = subscription.report.when.terms
        assert isinstance(term, CountCondition)
        assert term.threshold == 101  # "count > 100"

    def test_refresh(self):
        subscription = parse_subscription(PAPER_SUBSCRIPTION)
        refresh = subscription.refreshes[0]
        assert refresh.url == "http://inria.fr/Xy/members.xml"
        assert refresh.frequency == "weekly"


class TestNotificationTrigger:
    def test_competitors_example(self):
        subscription = parse_subscription(
            """
            subscription XylemeCompetitors
            monitoring ChangeInMyProducts
            select <ChangeInMyProducts/>
            where URL = "http://www.xyleme.com/products.xml"
              and modified self
            continuous MyCompetitors
            select c/name from business/company c where c contains "xml"
            when XylemeCompetitors.ChangeInMyProducts
            report when immediate
            """
        )
        trigger = subscription.continuous[0].trigger
        assert trigger.subscription == "XylemeCompetitors"
        assert trigger.query == "ChangeInMyProducts"
        assert subscription.monitoring[0].name == "ChangeInMyProducts"


class TestConditions:
    def parse_condition(self, text):
        subscription = parse_subscription(
            f"subscription T\nmonitoring\nselect X\nfrom self//a X\n"
            f"where {text}\nreport when immediate"
        )
        return subscription.monitoring[0].conditions[0]

    def test_url_eq(self):
        condition = self.parse_condition('URL = "http://a/"')
        assert condition.kind == "url_eq"

    def test_filename(self):
        condition = self.parse_condition('filename = "index.html"')
        assert condition.kind == "filename_eq"
        assert condition.string == "index.html"

    def test_dtd_and_ids(self):
        assert self.parse_condition('DTD = "http://d/c.dtd"').kind == "dtd_eq"
        assert self.parse_condition("DTDID = 7").number == 7
        assert self.parse_condition("DOCID = 12").kind == "docid_eq"

    def test_domain(self):
        condition = self.parse_condition('domain = "biology"')
        assert condition.kind == "domain_eq"

    def test_dates(self):
        condition = self.parse_condition('LastUpdate >= "2001-05-21"')
        assert condition.kind == "last_update"
        assert condition.comparator == ">="
        assert condition.number == 990403200.0  # 2001-05-21 UTC

    def test_date_as_epoch_number(self):
        condition = self.parse_condition("LastAccessed < 1000000")
        assert condition.number == 1000000.0

    def test_self_contains(self):
        condition = self.parse_condition('self contains "camera"')
        assert condition.kind == "self_contains"

    def test_element_with_contains(self):
        condition = self.parse_condition('updated Product contains "camera"')
        assert condition.kind == "element"
        assert condition.change_kind == "updated"
        assert condition.string == "camera"
        assert not condition.strict

    def test_element_strict_contains(self):
        condition = self.parse_condition(
            'category strict contains "hi-fi"'
        )
        assert condition.strict
        assert condition.change_kind is None

    def test_bare_element_presence(self):
        condition = self.parse_condition("Product")
        assert condition.kind == "element"
        assert condition.change_kind is None
        assert condition.string is None

    def test_deleted_element(self):
        condition = self.parse_condition("deleted Product")
        assert condition.change_kind == "deleted"


class TestReportClauses:
    def parse_report(self, text):
        return parse_subscription(
            f"subscription T\nmonitoring\nselect X\nfrom self//a X\n"
            f'where URL = "http://u/"\nreport {text}'
        ).report

    def test_immediate(self):
        (term,) = self.parse_report("when immediate").when.terms
        assert isinstance(term, ImmediateCondition)

    def test_periodic(self):
        (term,) = self.parse_report("when weekly").when.terms
        assert isinstance(term, PeriodicCondition)
        assert term.frequency == "weekly"

    def test_count_named_query(self):
        (term,) = self.parse_report("when count(UpdatedPage) >= 10").when.terms
        assert term.query_name == "UpdatedPage"
        assert term.threshold == 10

    def test_bare_query_name_count(self):
        (term,) = self.parse_report("when UpdatedPage >= 10").when.terms
        assert term.query_name == "UpdatedPage"

    def test_disjunction(self):
        report = self.parse_report("when weekly or count >= 500")
        assert len(report.when.terms) == 2

    def test_atmost_count_and_frequency(self):
        report = self.parse_report("when immediate atmost 500 atmost weekly")
        assert report.atmost_count == 500
        assert report.atmost_frequency == "weekly"

    def test_archive(self):
        report = self.parse_report("when immediate archive monthly")
        assert report.archive_frequency == "monthly"

    def test_report_query_captured(self):
        report = self.parse_report(
            "select u@url from Report/UpdatedPage u when immediate"
        )
        assert report.query_text.startswith("select u@url")


class TestVirtual:
    def test_virtual_reference(self):
        subscription = parse_subscription(
            "subscription Mine\nvirtual MyXyleme.Member"
        )
        (virtual,) = subscription.virtuals
        assert virtual.subscription == "MyXyleme"
        assert virtual.query == "Member"

    def test_virtual_whole_subscription(self):
        subscription = parse_subscription(
            "subscription Mine\nvirtual MyXyleme"
        )
        assert subscription.virtuals[0].query is None


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "",
            "subscription",
            "monitoring select X where URL = 'u'",  # no subscription header
            "subscription S\nmonitoring\nwhere URL = 'u'",  # no select
            "subscription S\nreport",  # missing when
            "subscription S\nreport when",  # empty when
            "subscription S\nrefresh 'http://u/'",  # missing frequency
            "subscription S\nreport when immediate\nreport when immediate",
            "subscription S\ncontinuous Q\nselect a from b/c a",  # no when
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(SubscriptionSyntaxError):
            parse_subscription(source)
