import pytest

from repro.errors import RepositoryError
from repro.repository import (
    Repository,
    SemanticClassifier,
    load_repository,
    save_repository,
)
from repro.xmlstore import serialize


@pytest.fixture
def snapshot_dir(tmp_path):
    return str(tmp_path / "warehouse")


def fresh_repository(classifier, clock):
    return Repository(classifier=classifier, clock=clock)


class TestSaveLoad:
    def test_roundtrip_documents_and_metadata(
        self, repository, classifier, clock, snapshot_dir
    ):
        repository.store_xml(
            "http://m.example/c.xml",
            '<!DOCTYPE museum SYSTEM "http://d/m.dtd">'
            "<museum><painting>art</painting></museum>",
        )
        repository.store_html("http://h.example/p.html", "<html>x</html>")
        count = save_repository(repository, snapshot_dir)
        assert count == 2

        loaded = fresh_repository(classifier, clock)
        assert load_repository(loaded, snapshot_dir) == 2
        meta = loaded.meta_for_url("http://m.example/c.xml")
        assert meta.domain == "culture"
        assert meta.dtd_url == "http://d/m.dtd"
        document = loaded.document_for_url("http://m.example/c.xml")
        assert "painting" in serialize(document)

    def test_indexes_rebuilt_on_load(
        self, repository, classifier, clock, snapshot_dir
    ):
        repository.store_xml("http://x/a.xml", "<r>findme word</r>")
        save_repository(repository, snapshot_dir)
        loaded = fresh_repository(classifier, clock)
        load_repository(loaded, snapshot_dir)
        assert loaded.indexes.documents_with_word("findme") != set()

    def test_diff_continuity_after_reload(
        self, repository, classifier, clock, snapshot_dir
    ):
        """A refetch after reload diffs against the reloaded version:
        XIDs survive the snapshot."""
        repository.store_xml(
            "http://x/a.xml", "<members><Member><name>a</name></Member></members>"
        )
        save_repository(repository, snapshot_dir)
        loaded = fresh_repository(classifier, clock)
        load_repository(loaded, snapshot_dir)
        clock.advance(60)
        outcome = loaded.store_xml(
            "http://x/a.xml",
            "<members><Member><name>a</name></Member>"
            "<Member><name>b</name></Member></members>",
        )
        assert outcome.status == "updated"
        assert outcome.delta is not None
        assert len(outcome.delta.inserts) == 1

    def test_doc_ids_continue_after_reload(
        self, repository, classifier, clock, snapshot_dir
    ):
        repository.store_xml("http://x/a.xml", "<r/>")
        save_repository(repository, snapshot_dir)
        loaded = fresh_repository(classifier, clock)
        load_repository(loaded, snapshot_dir)
        outcome = loaded.store_xml("http://x/b.xml", "<s/>")
        assert outcome.meta.doc_id == 2

    def test_unchanged_refetch_after_reload(
        self, repository, classifier, clock, snapshot_dir
    ):
        repository.store_xml("http://x/a.xml", "<r><a>1</a></r>")
        save_repository(repository, snapshot_dir)
        loaded = fresh_repository(classifier, clock)
        load_repository(loaded, snapshot_dir)
        outcome = loaded.store_xml("http://x/a.xml", "<r><a>1</a></r>")
        assert outcome.status == "unchanged"


class TestErrors:
    def test_load_into_nonempty_repository_rejected(
        self, repository, snapshot_dir
    ):
        repository.store_xml("http://x/a.xml", "<r/>")
        save_repository(repository, snapshot_dir)
        with pytest.raises(RepositoryError):
            load_repository(repository, snapshot_dir)

    def test_missing_snapshot_rejected(
        self, classifier, clock, tmp_path
    ):
        loaded = fresh_repository(classifier, clock)
        with pytest.raises(RepositoryError):
            load_repository(loaded, str(tmp_path / "nothing"))

    def test_save_empty_repository(self, repository, snapshot_dir):
        assert save_repository(repository, snapshot_dir) == 0


class TestCrawlerPageRemoval:
    def test_removed_page_not_fetched(self):
        from repro.clock import SECONDS_PER_DAY, SimulatedClock
        from repro.webworld import SimulatedCrawler, SiteGenerator

        clock = SimulatedClock(0.0)
        crawler = SimulatedCrawler(clock=clock, seed=1)
        crawler.add_xml_page(
            "http://a/x.xml", SiteGenerator(seed=1).catalog(2)
        )
        list(crawler.due_fetches())
        crawler.remove_page("http://a/x.xml")
        clock.advance(SECONDS_PER_DAY)
        assert list(crawler.due_fetches()) == []
