"""Crash recovery and degraded-mode executors.

Two halves of the robustness story that the fault injector cannot reach:

* a *process* crash mid-batch — a non-``ReproError`` escaping a stage —
  must lose no durable subscription state: the MiniSQL WAL replays into
  a fresh :class:`~repro.pipeline.SubscriptionSystem` and
  :meth:`~repro.subscription.manager.SubscriptionManager.recover`
  restores every subscription, its inhibition flag and its refresh
  hints;
* a *worker* crash inside a concurrent executor must degrade the batch
  to the serial path (counted under ``executor.fallbacks``) instead of
  aborting the stream, with results identical to a serial run.
"""

from __future__ import annotations

import pytest

from repro.clock import SimulatedClock
from repro.minisql import Database
from repro.pipeline import (
    Fetch,
    ShardFanoutExecutor,
    SubscriptionSystem,
    ThreadedExecutor,
)

SOURCE = """
subscription Recovery
monitoring NewCam
select <Hit url=URL/>
from self//Product X
where URL extends "http://www.shop"
  and new Product contains "camera"
refresh "http://www.shop0.example/catalog.xml" daily
report when immediate
"""

SECOND_SOURCE = SOURCE.replace("Recovery", "Muted")


def catalog_fetch(i, round_index=0, product="camera"):
    return Fetch(
        f"http://www.shop{i}.example/catalog.xml",
        f"<catalog><Product>{product} v{round_index}</Product></catalog>",
    )


class TestCrashRecovery:
    def test_wal_survives_a_mid_batch_crash(self, tmp_path):
        path = str(tmp_path / "subs.wal")
        system = SubscriptionSystem(database=Database(path=path))
        first = system.subscribe(SOURCE, owner_email="a@example.org")
        second = system.subscribe(SECOND_SOURCE, owner_email="b@example.org")
        system.manager.inhibit(second)
        hints = dict(system.manager.refresh_hints())
        system.feed_batch([catalog_fetch(0)])

        # Crash the process mid-batch: a non-ReproError escaping a stage
        # is an infrastructure failure, not a bad document — it must
        # propagate (and in a real deployment kill the worker).
        original = system.processor.process_alert

        def dying_stage(alert):
            raise RuntimeError("simulated crash: power loss mid-batch")

        system.processor.process_alert = dying_stage
        with pytest.raises(RuntimeError):
            system.feed_batch(
                [catalog_fetch(0, round_index=1), catalog_fetch(1)]
            )
        system.processor.process_alert = original
        system.manager.database.close()

        # Rebuild the whole system from the WAL alone.
        recovered = SubscriptionSystem(database=Database.recover(path))
        restored = recovered.manager.recover()
        assert restored == 2
        assert recovered.manager.count() == 2
        assert recovered.manager.subscription(first).active
        assert not recovered.manager.subscription(second).active
        assert dict(recovered.manager.refresh_hints()) == hints

        # The recovered system is live: the active subscription still
        # matches, the inhibited one stays quiet.
        results = recovered.run_stream(
            [catalog_fetch(0), catalog_fetch(0, round_index=1)]
        )
        notified = {
            n.subscription_id
            for result in results
            for n in result.notifications
            if hasattr(n, "subscription_id")
        }
        total = sum(len(r.notifications) for r in results)
        assert total >= 1
        if notified:
            assert second not in notified

    def test_recovered_ids_do_not_collide(self, tmp_path):
        path = str(tmp_path / "subs.wal")
        system = SubscriptionSystem(database=Database(path=path))
        first = system.subscribe(SOURCE, owner_email="a@example.org")
        system.manager.database.close()

        recovered = SubscriptionSystem(database=Database.recover(path))
        recovered.manager.recover()
        second = recovered.subscribe(
            SOURCE.replace("Recovery", "Later"), owner_email="c@example.org"
        )
        assert second > first


def build_system(executor, shards=1):
    system = SubscriptionSystem(
        clock=SimulatedClock(1_000_000.0),
        executor=executor,
        shards=shards,
    )
    system.subscribe(SOURCE, owner_email="a@example.org")
    return system


def stream(rounds=3, sites=6):
    return [
        catalog_fetch(i, r, "camera" if (r + i) % 2 == 0 else "tripod")
        for r in range(rounds)
        for i in range(sites)
    ]


def notification_keys(results):
    return sorted(
        (n.complex_code, n.document_url)
        for result in results
        for n in result.notifications
    )


class TestDegradedExecutors:
    def test_threaded_worker_crash_falls_back_to_serial(self):
        executor = ThreadedExecutor(max_workers=4)
        system = build_system(executor)

        def broken_sweep(step, items):
            raise RuntimeError("simulated pool crash")

        executor._sweep = broken_sweep
        baseline = build_system("serial")
        results = system.run_stream(stream())
        expected = baseline.run_stream(stream())

        assert notification_keys(results) == notification_keys(expected)
        assert system.documents_fed == baseline.documents_fed
        counters = system.metrics_snapshot()["counters"]
        assert counters["executor.fallbacks{executor=threaded}"] >= 1

    def test_sharded_worker_crash_falls_back_to_serial(self):
        system = build_system(ShardFanoutExecutor(), shards=4)

        def broken_fanout(alerts):
            raise RuntimeError("simulated shard worker crash")

        system.processor.match_alert_batch = broken_fanout
        baseline = build_system("serial", shards=4)
        results = system.run_stream(stream())
        expected = baseline.run_stream(stream())

        assert notification_keys(results) == notification_keys(expected)
        assert system.documents_fed == baseline.documents_fed
        counters = system.metrics_snapshot()["counters"]
        assert counters["executor.fallbacks{executor=sharded}"] >= 1

    def test_partial_sweep_crash_is_safe_to_rerun(self):
        """A sweep that dies *after* processing some tasks must still
        produce serial-identical results (the stages are idempotent)."""
        executor = ThreadedExecutor(max_workers=4)
        system = build_system(executor)
        original = executor._sweep
        calls = {"n": 0}

        def flaky_sweep(step, items):
            calls["n"] += 1
            # Process half the items, then die mid-sweep.
            for item in items[: len(items) // 2]:
                step(item)
            raise RuntimeError("simulated mid-sweep crash")

        executor._sweep = flaky_sweep
        baseline = build_system("serial")
        results = system.run_stream(stream())
        expected = baseline.run_stream(stream())

        assert calls["n"] >= 1
        assert notification_keys(results) == notification_keys(expected)

    def test_healthy_executors_never_count_fallbacks(self):
        for executor, shards in (("threaded", 1), ("sharded", 4)):
            system = build_system(executor, shards=shards)
            system.run_stream(stream())
            counters = system.metrics_snapshot()["counters"]
            fallback_keys = [
                key for key in counters if key.startswith("executor.fallbacks")
            ]
            assert fallback_keys == []
